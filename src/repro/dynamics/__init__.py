"""Dynamics: workload/content updates and peer churn."""

from repro.dynamics.churn import add_peer, random_departures, remove_peers
from repro.dynamics.periodic import PeriodicMaintenanceLoop, PeriodRecord
from repro.dynamics.updates import (
    UpdateReport,
    update_content_fraction,
    update_content_full,
    update_workload_fraction,
    update_workload_full,
)

__all__ = [
    "PeriodicMaintenanceLoop",
    "PeriodRecord",
    "UpdateReport",
    "update_workload_full",
    "update_workload_fraction",
    "update_content_full",
    "update_content_fraction",
    "add_peer",
    "remove_peers",
    "random_departures",
]
