"""Dynamics: declarative drift models/schedules, updates, churn and the periodic loop.

Importing this package registers the built-in drift models
(``workload-full``, ``workload-fraction``, ``content-full``,
``content-fraction``, ``churn``, ``composite``, ``none``) in
:data:`repro.registry.drift_registry`.
"""

from repro.dynamics.churn import add_peer, random_departures, remove_peers
from repro.dynamics.models import (
    DriftModel,
    DriftReport,
    build_drift_model,
    drift_model_from_spec,
)
from repro.dynamics.periodic import PeriodicMaintenanceLoop, PeriodRecord
from repro.dynamics.schedule import DriftRule, DynamicsSchedule
from repro.dynamics.updates import (
    UpdateReport,
    update_content_fraction,
    update_content_full,
    update_workload_fraction,
    update_workload_full,
)

__all__ = [
    "PeriodicMaintenanceLoop",
    "PeriodRecord",
    "DriftModel",
    "DriftReport",
    "DriftRule",
    "DynamicsSchedule",
    "build_drift_model",
    "drift_model_from_spec",
    "UpdateReport",
    "update_workload_full",
    "update_workload_fraction",
    "update_content_full",
    "update_content_fraction",
    "add_peer",
    "remove_peers",
    "random_departures",
]
