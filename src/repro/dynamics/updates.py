"""Workload and content updates (the change model of Section 4.2).

The maintenance experiments start from a good clustering and then perturb a
single cluster ``c_cur`` in one of two ways:

* **scenario (a)** — a varying *number of peers* in ``c_cur`` is updated
  completely (their whole workload, or their whole content, switches to a
  different category), or
* **scenario (b)** — *all* peers in ``c_cur`` are updated by a varying
  *degree* (a fraction of their workload / content switches category).

The helpers below apply those perturbations to a network in place; they work
on any subset of peers so they are also reusable for churn-style studies.
Every helper takes an **explicit** ``rng`` — drift must be reproducible under
the sweep engine's spawned seed streams, so no randomness is ever drawn from
module-level or generator-owned state.  Pass ``random.Random(seed)`` (or any
object with the same sampling interface).
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from typing import List

from repro.datasets.corpus import CorpusGenerator
from repro.errors import DatasetError
from repro.peers.network import PeerNetwork

__all__ = [
    "UpdateReport",
    "update_workload_full",
    "update_workload_fraction",
    "update_content_full",
    "update_content_fraction",
]

PeerId = Hashable


@dataclass(frozen=True)
class UpdateReport:
    """Record of one applied update (useful for experiment logs)."""

    kind: str
    peer_ids: tuple
    new_category: str
    fraction: float

    @property
    def num_peers(self) -> int:
        """Number of peers whose state was updated."""
        return len(self.peer_ids)


def _validate_peers(network: PeerNetwork, peer_ids: Sequence[PeerId]) -> List[PeerId]:
    missing = [peer_id for peer_id in peer_ids if peer_id not in network]
    if missing:
        raise DatasetError(f"peers not in network: {missing!r}")
    return list(peer_ids)


def _validate_rng(rng: random.Random) -> random.Random:
    if rng is None:
        raise DatasetError(
            "an explicit rng (e.g. random.Random(seed)) is required; "
            "implicit module-level randomness is not reproducible under "
            "the sweep engine's seed streams"
        )
    return rng


def update_workload_full(
    network: PeerNetwork,
    peer_ids: Sequence[PeerId],
    new_category: str,
    generator: CorpusGenerator,
    *,
    rng: random.Random,
) -> UpdateReport:
    """Replace the whole workload of *peer_ids* with queries about *new_category*.

    The volume of each peer's workload is preserved (the peers become
    interested in data located at another cluster, but they do not become
    more or less demanding).
    """
    rng = _validate_rng(rng)
    peers = _validate_peers(network, peer_ids)
    for peer_id in peers:
        peer = network.peer(peer_id)
        volume = max(peer.workload.total(), 1)
        peer.replace_workload(generator.generate_workload(new_category, volume, rng=rng))
    network.invalidate()
    return UpdateReport(
        kind="workload-full", peer_ids=tuple(peers), new_category=new_category, fraction=1.0
    )


def update_workload_fraction(
    network: PeerNetwork,
    peer_ids: Sequence[PeerId],
    new_category: str,
    generator: CorpusGenerator,
    fraction: float,
    *,
    rng: random.Random,
) -> UpdateReport:
    """Replace *fraction* of each peer's workload volume with *new_category* queries."""
    rng = _validate_rng(rng)
    if not 0.0 <= fraction <= 1.0:
        raise DatasetError(f"fraction must be in [0, 1], got {fraction}")
    peers = _validate_peers(network, peer_ids)
    for peer_id in peers:
        peer = network.peer(peer_id)
        volume = max(peer.workload.total(), 1)
        replaced_volume = max(int(round(fraction * volume)), 1) if fraction > 0 else 0
        if replaced_volume == 0:
            continue
        replacement = generator.generate_workload(new_category, replaced_volume, rng=rng)
        peer.replace_workload_fraction(fraction, replacement)
    network.invalidate()
    return UpdateReport(
        kind="workload-fraction",
        peer_ids=tuple(peers),
        new_category=new_category,
        fraction=fraction,
    )


def update_content_full(
    network: PeerNetwork,
    peer_ids: Sequence[PeerId],
    new_category: str,
    generator: CorpusGenerator,
    *,
    rng: random.Random,
) -> UpdateReport:
    """Replace the whole content of *peer_ids* with documents of *new_category*."""
    rng = _validate_rng(rng)
    peers = _validate_peers(network, peer_ids)
    for peer_id in peers:
        peer = network.peer(peer_id)
        count = max(len(peer.documents), 1)
        peer.replace_documents(generator.generate_documents(new_category, count, rng=rng))
    network.invalidate()
    return UpdateReport(
        kind="content-full", peer_ids=tuple(peers), new_category=new_category, fraction=1.0
    )


def update_content_fraction(
    network: PeerNetwork,
    peer_ids: Sequence[PeerId],
    new_category: str,
    generator: CorpusGenerator,
    fraction: float,
    *,
    rng: random.Random,
) -> UpdateReport:
    """Replace *fraction* of each peer's documents with documents of *new_category*."""
    rng = _validate_rng(rng)
    if not 0.0 <= fraction <= 1.0:
        raise DatasetError(f"fraction must be in [0, 1], got {fraction}")
    peers = _validate_peers(network, peer_ids)
    for peer_id in peers:
        peer = network.peer(peer_id)
        replaced_count = int(round(fraction * len(peer.documents)))
        if replaced_count == 0:
            continue
        replacements = generator.generate_documents(new_category, replaced_count, rng=rng)
        peer.replace_document_fraction(fraction, replacements)
    network.invalidate()
    return UpdateReport(
        kind="content-fraction",
        peer_ids=tuple(peers),
        new_category=new_category,
        fraction=fraction,
    )
