"""Dynamics schedules: mapping maintenance periods to drift-model invocations.

A :class:`DynamicsSchedule` is the declarative replacement for the old
``updates=[callback, ...]`` lists: it says *which* registered drift models
run *when*, as a plain bag of strings/numbers that round-trips through JSON
(``from_dict`` / ``to_dict``) and therefore travels inside a
:class:`~repro.session.config.SessionConfig` across the sweep engine's
process boundaries.

A schedule is a list of :class:`DriftRule`\\ s.  Each rule names a registered
model plus its options, and describes when it fires:

* **every period** — the default (``start=0, every=1``);
* **one-shot** — ``times=1`` (fire once at ``start``);
* **periodic** — ``every=N`` (fire at ``start``, ``start+N``, ...), optionally
  capped by ``times``;
* **ramp** — ``ramp={"option": name, "values": [...]}`` overrides one option
  per invocation with the next grid value (the paper's varying
  number-of-peers / degree axes as a within-run schedule); the rule stops
  after the grid is exhausted.

JSON shape (a single rule may stand for the whole schedule)::

    {"model": "workload-full", "options": {"peer_fraction": 0.4}, "start": 1}
    {"rules": [{"model": "churn", "options": {"departures": 2}, "every": 2},
               {"model": "content-fraction", "options": {"fraction": 0.3}}]}

Determinism: every (period, rule) invocation draws from its own
``random.Random`` seeded through ``numpy.random.SeedSequence`` from the
session's master seed — a pure function of ``(seed, period, rule index)``,
never of scheduling or worker count, so sweeps over drifting sessions stay
byte-identical for any ``workers`` value.

Plain callbacks (the deprecated pre-registry interface) are still accepted
through :meth:`DynamicsSchedule.from_callbacks`; such a schedule works but
cannot be serialised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.datasets.scenarios import ScenarioData
from repro.dynamics.models import DriftModel, DriftReport, build_drift_model
from repro.errors import ConfigurationError
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.registry import drift_registry

__all__ = ["DriftRule", "DynamicsSchedule"]

#: The deprecated per-period callback shape (kept for the adapter).
UpdateCallback = Callable[[PeerNetwork, ClusterConfiguration], None]

#: Domain-separation constant so drift streams never collide with the seed
#: streams the sweep engine spawns for scenario builds / initial configurations.
_DRIFT_STREAM = 0xD21F


def _derive_rng(seed: int, period: int, rule_index: int) -> random.Random:
    """The deterministic RNG of one (period, rule) drift invocation."""
    entropy = [int(seed) % (2**32), _DRIFT_STREAM, int(period), int(rule_index)]
    state = np.random.SeedSequence(entropy).generate_state(2, dtype=np.uint32)
    return random.Random(int(state[0]) << 32 | int(state[1]))


@dataclass(frozen=True)
class DriftRule:
    """One scheduled drift: a registered model plus its firing pattern."""

    #: Registered drift-model name.
    model: str
    #: Plain-dict constructor options for the model.
    options: Dict[str, Any] = field(default_factory=dict)
    #: First period the rule fires at.
    start: int = 0
    #: Fire every N periods from ``start`` on.
    every: int = 1
    #: Maximum number of invocations (``1`` = one-shot); ``None`` = unlimited.
    times: Optional[int] = None
    #: Per-invocation override of one option: ``{"option": name, "values": [...]}``.
    ramp: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"start must be non-negative, got {self.start}")
        if self.every < 1:
            raise ConfigurationError(f"every must be at least 1, got {self.every}")
        if self.times is not None and self.times < 1:
            raise ConfigurationError(f"times must be at least 1, got {self.times}")
        if self.ramp is not None:
            unknown = sorted(set(self.ramp) - {"option", "values"})
            if unknown or "option" not in self.ramp or "values" not in self.ramp:
                raise ConfigurationError(
                    "ramp must be a mapping with exactly the keys 'option' and "
                    f"'values', got {sorted(self.ramp)}"
                )
            if not self.ramp["values"]:
                raise ConfigurationError("ramp values must be non-empty")

    # -- firing pattern ------------------------------------------------------

    def invocation_index(self, period: int) -> Optional[int]:
        """The 0-based invocation number at *period*, or ``None`` if silent."""
        if period < self.start:
            return None
        offset = period - self.start
        if offset % self.every:
            return None
        invocation = offset // self.every
        if self.times is not None and invocation >= self.times:
            return None
        if self.ramp is not None and invocation >= len(self.ramp["values"]):
            return None
        return invocation

    def options_for(self, invocation: int) -> Dict[str, Any]:
        """The model options of the *invocation*-th firing (ramp applied)."""
        options = dict(self.options)
        if self.ramp is not None:
            options[str(self.ramp["option"])] = self.ramp["values"][invocation]
        return options

    def build_model(self, invocation: int) -> DriftModel:
        """Instantiate the rule's model for one invocation."""
        return build_drift_model(self.model, **self.options_for(invocation))

    # -- serialisation -------------------------------------------------------

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "DriftRule":
        """Build a rule from a plain mapping; unknown keys fail fast."""
        known = {"model", "options", "start", "every", "times", "ramp"}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown drift rule keys {unknown}; valid keys: {sorted(known)}"
            )
        if "model" not in mapping:
            raise ConfigurationError("a drift rule needs a 'model' name")
        return cls(
            model=str(mapping["model"]),
            options=dict(mapping.get("options") or {}),
            start=int(mapping.get("start", 0)),
            every=int(mapping.get("every", 1)),
            times=(int(mapping["times"]) if mapping.get("times") is not None else None),
            ramp=(dict(mapping["ramp"]) if mapping.get("ramp") is not None else None),
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable mapping that round-trips through :meth:`from_dict`."""
        payload: Dict[str, Any] = {"model": self.model, "options": dict(self.options)}
        if self.start:
            payload["start"] = self.start
        if self.every != 1:
            payload["every"] = self.every
        if self.times is not None:
            payload["times"] = self.times
        if self.ramp is not None:
            payload["ramp"] = {
                "option": self.ramp["option"],
                "values": list(self.ramp["values"]),
            }
        return payload


class DynamicsSchedule:
    """An ordered set of :class:`DriftRule`\\ s bound to one session's data and seed.

    Life cycle: build (``from_dict`` / ``from_any`` / constructor) →
    :meth:`bind` the scenario data and master seed →
    :meth:`apply_period` once per maintenance period (the
    :class:`~repro.dynamics.periodic.PeriodicMaintenanceLoop` does this and
    publishes one ``drift_applied`` event per returned report).
    """

    def __init__(
        self,
        rules: Sequence[DriftRule] = (),
        *,
        callbacks: Optional[Sequence[Optional[UpdateCallback]]] = None,
    ) -> None:
        self.rules: List[DriftRule] = list(rules)
        if callbacks is not None and self.rules:
            raise ConfigurationError(
                "a schedule holds either declarative rules or legacy callbacks, not both"
            )
        self._callbacks = list(callbacks) if callbacks is not None else None
        self._data: Optional[ScenarioData] = None
        self._seed = 0

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "DynamicsSchedule":
        """Build a schedule from its JSON form (one rule, or ``{"rules": [...]}``)."""
        if not isinstance(mapping, Mapping):
            raise ConfigurationError(
                f"a dynamics spec must be a mapping, got {type(mapping).__name__}"
            )
        if "rules" in mapping:
            extra = sorted(set(mapping) - {"rules"})
            if extra:
                raise ConfigurationError(
                    f"a rules-based dynamics spec accepts only 'rules', got extra keys {extra}"
                )
            rules = [DriftRule.from_dict(rule) for rule in mapping["rules"]]
            if not rules:
                raise ConfigurationError("dynamics 'rules' must be non-empty")
            return cls(rules)
        return cls([DriftRule.from_dict(mapping)])

    @classmethod
    def from_any(cls, value: Any) -> "DynamicsSchedule":
        """Coerce *value* (schedule or mapping) to a :class:`DynamicsSchedule`."""
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise ConfigurationError(
            f"expected a DynamicsSchedule or mapping, got {type(value).__name__}"
        )

    @classmethod
    def from_callbacks(
        cls, updates: Sequence[Optional[UpdateCallback]]
    ) -> "DynamicsSchedule":
        """Adapter for the deprecated raw-callback interface.

        ``updates[i]`` (when not ``None``) is invoked before period ``i``
        exactly as :meth:`PeriodicMaintenanceLoop.run` always did.  The
        resulting schedule is not serialisable — migrate to registered drift
        models to sweep it.
        """
        return cls((), callbacks=list(updates))

    # -- binding -------------------------------------------------------------

    @property
    def is_callback_schedule(self) -> bool:
        """Whether this schedule wraps deprecated raw callbacks."""
        return self._callbacks is not None

    def bind(
        self,
        *,
        data: Optional[ScenarioData] = None,
        seed: Optional[int] = None,
    ) -> "DynamicsSchedule":
        """Attach the scenario *data* and master *seed* the rules draw from."""
        if data is not None:
            self._data = data
        if seed is not None:
            self._seed = int(seed)
        return self

    # -- application ---------------------------------------------------------

    def apply_period(
        self,
        network: PeerNetwork,
        configuration: ClusterConfiguration,
        period: int,
    ) -> List[DriftReport]:
        """Apply every rule scheduled for *period*; returns their reports."""
        if self._callbacks is not None:
            if period >= len(self._callbacks):
                return []
            callback = self._callbacks[period]
            if callback is None:
                return []
            callback(network, configuration)
            return [DriftReport(model="callback", period=period)]
        reports: List[DriftReport] = []
        for rule_index, rule in enumerate(self.rules):
            invocation = rule.invocation_index(period)
            if invocation is None:
                continue
            model = rule.build_model(invocation)
            rng = _derive_rng(self._seed, period, rule_index)
            model.prepare(self._data, rng)
            report = model.apply(network, configuration, period, rng)
            if report is not None:
                reports.append(report)
        return reports

    # -- validation / serialisation -----------------------------------------

    def validate(self) -> "DynamicsSchedule":
        """Fail fast on unknown model names or unbuildable first invocations."""
        for rule in self.rules:
            drift_registry.canonical_name(rule.model)
            rule.build_model(0)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """The JSON form (single rule flattened; round-trips through :meth:`from_dict`)."""
        if self._callbacks is not None:
            raise ConfigurationError(
                "callback-based schedules cannot be serialised; define the drift "
                "as registered models (see repro.dynamics.models)"
            )
        if len(self.rules) == 1:
            return self.rules[0].to_dict()
        return {"rules": [rule.to_dict() for rule in self.rules]}

    def __repr__(self) -> str:
        if self._callbacks is not None:
            return f"DynamicsSchedule(callbacks={len(self._callbacks)})"
        return f"DynamicsSchedule(rules={[rule.model for rule in self.rules]})"
