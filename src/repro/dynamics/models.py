"""Registered, declarative drift models (the Section 4.2 change model as components).

The maintenance experiments are driven by exogenous change: workload or
content drift on a perturbed cluster, and peer churn.  Historically those
changes were raw Python callbacks threaded into the maintenance loop — the
one part of a run that could not be described by a JSON-round-trippable
:class:`~repro.session.config.SessionConfig` and therefore could not cross
the sweep engine's process boundaries.

A :class:`DriftModel` closes that gap.  It is the drift analogue of a
registered strategy or scenario:

* constructed from a plain dict of strings/numbers
  (``build_drift_model("workload-full", peer_fraction=0.4)``),
* registered by name through :func:`repro.registry.register_drift`,
* applied through a two-phase protocol — :meth:`DriftModel.prepare` binds the
  scenario data (corpus generator, ground-truth categories), then
  :meth:`DriftModel.apply` perturbs the network/configuration for one period
  and returns a JSON-exportable :class:`DriftReport`.

Built-in models (all options optional unless noted):

``workload-full``
    Scenario (a) for workloads: the first ``peer_fraction`` (or an explicit
    ``peers`` count) of the perturbed cluster's members switch their *whole*
    workload to another category.
``workload-fraction``
    Scenario (b) for workloads: *all* members of the perturbed cluster switch
    ``fraction`` (required) of their workload.
``content-full`` / ``content-fraction``
    The same two scenarios applied to the peers' documents (Figure 3).
``churn``
    ``departures`` peers (or ``departure_fraction`` of the population) leave
    the system, uniformly at random.
``composite``
    Applies a list of sub-model specs (``models=[{"model": ..., "options":
    ...}, ...]``) in order.
``none``
    Explicit no-op (useful as a grid point next to real drift).

The cluster-perturbing models resolve their targets exactly like the
maintenance experiment drivers always did: the perturbed cluster ``c_cur`` is
the ``cluster_index``-th non-empty cluster, its members are repr-sorted, and
the target category ``c_new`` defaults to the first other category — so a
drift model reproduces the pre-registry closures result for result.

All randomness flows through the explicit ``rng`` handed to :meth:`apply`;
the :class:`~repro.dynamics.schedule.DynamicsSchedule` derives one
deterministic stream per (seed, period, rule) so sweeps stay byte-identical
for any worker count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.datasets.scenarios import ScenarioData
from repro.dynamics.churn import random_departures
from repro.dynamics.updates import (
    update_content_fraction,
    update_content_full,
    update_workload_fraction,
    update_workload_full,
)
from repro.errors import ConfigurationError
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.registry import drift_registry, register_drift

__all__ = [
    "DriftReport",
    "DriftModel",
    "build_drift_model",
    "drift_model_from_spec",
]


@dataclass(frozen=True)
class DriftReport:
    """JSON-exportable record of one applied drift (carried by ``drift_applied`` events)."""

    #: Registered name of the model that produced the drift.
    model: str
    #: Maintenance period the drift was applied before.
    period: int
    #: Peers whose state changed (removed peers for churn).
    peer_ids: Tuple[Any, ...] = ()
    #: Target category for workload/content drift.
    category: Optional[str] = None
    #: Updated degree (1.0 for full updates).
    fraction: Optional[float] = None
    #: Sub-reports of a composite drift.
    parts: Tuple["DriftReport", ...] = field(default_factory=tuple)

    @property
    def num_peers(self) -> int:
        """Number of peers affected, including composite sub-reports."""
        return len(self.peer_ids) + sum(part.num_peers for part in self.parts)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable summary of the drift."""
        payload: Dict[str, Any] = {
            "model": self.model,
            "period": self.period,
            "peer_ids": [str(peer_id) for peer_id in self.peer_ids],
        }
        if self.category is not None:
            payload["category"] = self.category
        if self.fraction is not None:
            payload["fraction"] = self.fraction
        if self.parts:
            payload["parts"] = [part.to_dict() for part in self.parts]
        return payload


class DriftModel:
    """Protocol (and convenience base) for registered drift models.

    A drift model's lifecycle has two phases:

    ``prepare(data, rng)``
        Called once before the first application, with the session's
        :class:`~repro.datasets.scenarios.ScenarioData` (or ``None`` when the
        caller has no scenario — models that need the corpus generator or the
        ground-truth categories raise then).  Implementations must not mutate
        the network here.
    ``apply(network, configuration, period, rng) -> Optional[DriftReport]``
        Perturb the network and/or configuration in place for *period*;
        return a report, or ``None`` when the invocation was a no-op.

    Third parties register models through
    :func:`repro.registry.register_drift`; the class (or factory) is called
    with the model's plain-dict options, so a registered model is fully
    describable by ``{"model": name, "options": {...}}``.
    """

    #: Registered name, used in reports (subclasses override).
    name = "drift"
    #: Whether :meth:`prepare` must receive a non-``None`` ``ScenarioData``.
    requires_data = False

    def __init__(self) -> None:
        self.data: Optional[ScenarioData] = None

    def prepare(self, data: Optional[ScenarioData], rng: random.Random) -> None:
        """Bind the scenario *data* this model perturbs (no mutation yet)."""
        if data is None and self.requires_data:
            raise ConfigurationError(
                f"drift model {self.name!r} needs scenario data (corpus generator "
                "and ground-truth categories); prepare() received None"
            )
        self.data = data

    def apply(
        self,
        network: PeerNetwork,
        configuration: ClusterConfiguration,
        period: int,
        rng: random.Random,
    ) -> Optional[DriftReport]:
        """Apply one period's drift; return a report or ``None`` for a no-op."""
        raise NotImplementedError


def build_drift_model(name: str, **options: Any) -> DriftModel:
    """Instantiate the drift model registered under *name* with plain-dict *options*.

    Unknown names raise :class:`~repro.errors.UnknownComponentError` listing
    the registered models; invalid options raise
    :class:`~repro.errors.ConfigurationError` instead of a bare ``TypeError``.
    """
    factory = drift_registry.get(name)
    try:
        return factory(**options)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid options for drift model {name!r}: {error}"
        ) from None


def drift_model_from_spec(spec: Mapping[str, Any]) -> DriftModel:
    """Build a model from a ``{"model": name, "options": {...}}`` mapping."""
    if not isinstance(spec, Mapping):
        raise ConfigurationError(
            f"a drift spec must be a mapping, got {type(spec).__name__}"
        )
    unknown = sorted(set(spec) - {"model", "options"})
    if unknown:
        raise ConfigurationError(
            f"unknown drift spec keys {unknown}; valid keys: ['model', 'options'] "
            "(schedule keys such as 'start'/'every'/'ramp' belong to a "
            "DynamicsSchedule rule, not a bare model spec)"
        )
    if "model" not in spec:
        raise ConfigurationError("a drift spec needs a 'model' name")
    options = spec.get("options") or {}
    if not isinstance(options, Mapping):
        raise ConfigurationError(
            f"drift spec 'options' must be a mapping, got {type(options).__name__}"
        )
    return build_drift_model(str(spec["model"]), **options)


class _ClusterDriftModel(DriftModel):
    """Shared target resolution for models perturbing one cluster ``c_cur``."""

    requires_data = True

    def __init__(self, *, cluster_index: int = 0, category: Optional[str] = None) -> None:
        super().__init__()
        self.cluster_index = int(cluster_index)
        if self.cluster_index < 0:
            raise ConfigurationError(
                f"cluster_index must be non-negative, got {cluster_index}"
            )
        self.category = category

    def _target_members(self, configuration: ClusterConfiguration) -> List[Any]:
        """The repr-sorted members of the perturbed cluster ``c_cur``."""
        clusters = configuration.nonempty_clusters()
        if not clusters:
            raise ConfigurationError(
                f"drift model {self.name!r} needs at least one non-empty cluster"
            )
        cluster_id = clusters[self.cluster_index % len(clusters)]
        return sorted(configuration.members(cluster_id), key=repr)

    def _new_category(self, members: Sequence[Any]) -> str:
        """The target category ``c_new`` (explicit, or the first other category)."""
        if self.category is not None:
            return str(self.category)
        assert self.data is not None  # requires_data enforces this in prepare()
        current = self.data.data_categories.get(members[0]) if members else None
        others = sorted(
            {
                category
                for category in self.data.data_categories.values()
                if category is not None and category != current
            }
        )
        if not others:
            raise ConfigurationError(
                f"drift model {self.name!r} found no alternative category to "
                "drift towards; pass category=... explicitly"
            )
        return others[0]


class _FullUpdateDrift(_ClusterDriftModel):
    """Scenario (a): a varying *number of peers* in ``c_cur`` is updated completely."""

    #: The underlying update helper (set by subclasses).
    _update = None

    def __init__(
        self,
        *,
        peer_fraction: Optional[float] = None,
        peers: Optional[int] = None,
        cluster_index: int = 0,
        category: Optional[str] = None,
    ) -> None:
        super().__init__(cluster_index=cluster_index, category=category)
        if peer_fraction is not None and peers is not None:
            raise ConfigurationError(
                "give either peer_fraction or peers (an explicit count), not both"
            )
        if peer_fraction is not None and not 0.0 <= float(peer_fraction) <= 1.0:
            raise ConfigurationError(
                f"peer_fraction must be in [0, 1], got {peer_fraction}"
            )
        if peers is not None and int(peers) < 0:
            raise ConfigurationError(f"peers must be non-negative, got {peers}")
        self.peer_fraction = float(peer_fraction) if peer_fraction is not None else None
        self.peers = int(peers) if peers is not None else None

    def _affected(self, members: Sequence[Any]) -> List[Any]:
        if self.peers is not None:
            count = min(self.peers, len(members))
        else:
            fraction = self.peer_fraction if self.peer_fraction is not None else 1.0
            count = int(round(fraction * len(members)))
        return list(members)[:count]

    def apply(
        self,
        network: PeerNetwork,
        configuration: ClusterConfiguration,
        period: int,
        rng: random.Random,
    ) -> Optional[DriftReport]:
        members = self._target_members(configuration)
        affected = self._affected(members)
        if not affected:
            return None
        category = self._new_category(members)
        assert self.data is not None
        type(self)._update(network, affected, category, self.data.generator, rng=rng)
        return DriftReport(
            model=self.name,
            period=period,
            peer_ids=tuple(affected),
            category=category,
            fraction=1.0,
        )


class _FractionUpdateDrift(_ClusterDriftModel):
    """Scenario (b): *all* peers in ``c_cur`` are updated by a varying degree."""

    _update = None

    def __init__(
        self,
        *,
        fraction: float,
        cluster_index: int = 0,
        category: Optional[str] = None,
    ) -> None:
        super().__init__(cluster_index=cluster_index, category=category)
        if not 0.0 <= float(fraction) <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        self.fraction = float(fraction)

    def apply(
        self,
        network: PeerNetwork,
        configuration: ClusterConfiguration,
        period: int,
        rng: random.Random,
    ) -> Optional[DriftReport]:
        if self.fraction <= 0.0:
            return None
        members = self._target_members(configuration)
        if not members:
            return None
        category = self._new_category(members)
        assert self.data is not None
        type(self)._update(
            network, members, category, self.data.generator, self.fraction, rng=rng
        )
        return DriftReport(
            model=self.name,
            period=period,
            peer_ids=tuple(members),
            category=category,
            fraction=self.fraction,
        )


@register_drift("workload-full", aliases=("workload-peers",))
class WorkloadFullDrift(_FullUpdateDrift):
    """Peers in ``c_cur`` switch their whole workload to another category."""

    name = "workload-full"
    _update = staticmethod(update_workload_full)


@register_drift("workload-fraction", aliases=("workload-degree",))
class WorkloadFractionDrift(_FractionUpdateDrift):
    """All peers in ``c_cur`` switch a fraction of their workload."""

    name = "workload-fraction"
    _update = staticmethod(update_workload_fraction)


@register_drift("content-full", aliases=("content-peers",))
class ContentFullDrift(_FullUpdateDrift):
    """Peers in ``c_cur`` replace their whole content with another category's."""

    name = "content-full"
    _update = staticmethod(update_content_full)


@register_drift("content-fraction", aliases=("content-degree",))
class ContentFractionDrift(_FractionUpdateDrift):
    """All peers in ``c_cur`` replace a fraction of their documents."""

    name = "content-fraction"
    _update = staticmethod(update_content_fraction)


@register_drift("churn")
class ChurnDrift(DriftModel):
    """Uniformly random peer departures (topology updates as peers leave)."""

    name = "churn"

    def __init__(
        self,
        *,
        departures: Optional[int] = None,
        departure_fraction: Optional[float] = None,
    ) -> None:
        super().__init__()
        if departures is not None and departure_fraction is not None:
            raise ConfigurationError(
                "give either departures (a count) or departure_fraction, not both"
            )
        if departures is not None and int(departures) < 0:
            raise ConfigurationError(
                f"departures must be non-negative, got {departures}"
            )
        if departure_fraction is not None and not 0.0 <= float(departure_fraction) <= 1.0:
            raise ConfigurationError(
                f"departure_fraction must be in [0, 1], got {departure_fraction}"
            )
        self.departures = int(departures) if departures is not None else None
        self.departure_fraction = (
            float(departure_fraction) if departure_fraction is not None else None
        )

    def apply(
        self,
        network: PeerNetwork,
        configuration: ClusterConfiguration,
        period: int,
        rng: random.Random,
    ) -> Optional[DriftReport]:
        if self.departures is not None:
            count = self.departures
        elif self.departure_fraction is not None:
            count = int(round(self.departure_fraction * len(network)))
        else:
            count = 1
        count = min(count, len(network))
        if count <= 0:
            return None
        removed = random_departures(network, configuration, count, rng=rng)
        return DriftReport(
            model=self.name,
            period=period,
            peer_ids=tuple(peer.peer_id for peer in removed),
        )


@register_drift("composite")
class CompositeDrift(DriftModel):
    """Applies a list of sub-model specs in order (one report with parts)."""

    name = "composite"

    def __init__(self, *, models: Sequence[Mapping[str, Any]]) -> None:
        super().__init__()
        if not models:
            raise ConfigurationError("composite drift needs at least one sub-model")
        self.models = [drift_model_from_spec(spec) for spec in models]

    def prepare(self, data: Optional[ScenarioData], rng: random.Random) -> None:
        super().prepare(data, rng)
        for model in self.models:
            model.prepare(data, rng)

    def apply(
        self,
        network: PeerNetwork,
        configuration: ClusterConfiguration,
        period: int,
        rng: random.Random,
    ) -> Optional[DriftReport]:
        parts = tuple(
            report
            for model in self.models
            if (report := model.apply(network, configuration, period, rng)) is not None
        )
        if not parts:
            return None
        return DriftReport(model=self.name, period=period, parts=parts)


@register_drift("none", aliases=("noop",))
class NoDrift(DriftModel):
    """Explicit no-op (a clean 'no drift' grid point)."""

    name = "none"

    def __init__(self) -> None:
        super().__init__()

    def apply(
        self,
        network: PeerNetwork,
        configuration: ClusterConfiguration,
        period: int,
        rng: random.Random,
    ) -> Optional[DriftReport]:
        return None
