"""Parallel sweep engine with deterministic seed streams.

The paper's numbers are statements about *distributions* of equilibria; this
package is the layer that produces those distributions fast.  A
:class:`~repro.sweep.spec.SweepSpec` declares a grid over scenarios ×
initial configurations × strategies × thetas × seeds (plus explicit task
lists), :func:`~repro.sweep.engine.run_sweep` fans the tasks out over a
process pool, and :class:`~repro.sweep.result.SweepResult` aggregates the
per-task :class:`~repro.session.result.RunResult`\\ s (JSONL persistence,
mean/stddev/CI summaries).

Determinism is the design center: per-task seeds derive from
``numpy.random.SeedSequence.spawn`` as a pure function of the spec, so a
sweep is byte-identical for any worker count, including 1::

    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        scenarios=("same-category",),
        strategies=("selfish", "altruistic"),
        scale="quick",
        replications=8,
    )
    result = run_sweep(spec, workers=4)
    print(result.summary_table())

Progress streams through ``repro.events`` (``task_started`` /
``task_finished`` / ``sweep_end``); the ``repro sweep`` CLI subcommand
drives all of this from a JSON spec or flags.
"""

from repro.sweep.cache import (
    clear_scenario_cache,
    scenario_cache_enabled,
    scenario_cache_info,
    scenario_data_for,
)
from repro.sweep.engine import execute_task, run_sweep
from repro.sweep.result import SweepResult, read_jsonl
from repro.sweep.runners import resolve_runner
from repro.sweep.spec import DEFAULT_RUNNER, SweepSpec, SweepTask, derive_seeds

__all__ = [
    "SweepSpec",
    "SweepTask",
    "SweepResult",
    "run_sweep",
    "execute_task",
    "read_jsonl",
    "resolve_runner",
    "derive_seeds",
    "DEFAULT_RUNNER",
    "scenario_data_for",
    "scenario_cache_enabled",
    "scenario_cache_info",
    "clear_scenario_cache",
]
