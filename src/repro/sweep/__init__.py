"""Parallel sweep engine with deterministic seed streams and resume.

The paper's numbers are statements about *distributions* of equilibria; this
package is the layer that produces those distributions fast.  A
:class:`~repro.sweep.spec.SweepSpec` declares a grid over scenarios ×
initial configurations × strategies × thetas × dynamics × workloads × seeds
(plus explicit task lists), :func:`~repro.sweep.engine.run_sweep` hands the
tasks to a pluggable :class:`~repro.sweep.executors.SweepExecutor`
(``serial`` / ``process-pool`` / ``chunked-streaming``, or any registered
backend), and :class:`~repro.sweep.result.SweepResult` aggregates the
per-task :class:`~repro.session.result.RunResult`\\ s (JSONL persistence,
mean/stddev/CI summaries).

Determinism is the design center: per-task seeds derive from
``numpy.random.SeedSequence.spawn`` as a pure function of the spec, so a
sweep is byte-identical for every executor and worker count::

    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        scenarios=("same-category",),
        strategies=("selfish", "altruistic"),
        scale="quick",
        replications=8,
    )
    result = run_sweep(
        spec,
        executor={"name": "process-pool", "options": {"max_workers": 4}},
        store=".sweep-store",  # content-addressed results: killed sweeps resume
    )
    print(result.summary_table())

With a :class:`~repro.sweep.store.ResultStore` (the ``store=`` argument),
every finished task is persisted under the sha256 of its canonical config —
re-running a spec (or any spec containing the same tasks) skips the stored
subset and executes only what is missing, which is how preempted and
CI-sharded grids grow incrementally.

Progress streams through ``repro.events`` (``task_started`` /
``task_finished`` / ``task_skipped`` / ``task_loaded`` / ``task_failed`` /
``task_retried`` / ``task_quarantined`` / ``sweep_end``); the ``repro
sweep`` CLI subcommand drives all of this from a JSON spec or flags
(``--executor``, ``--store``, ``--resume``, ``--retries``,
``--task-timeout``).

Fault tolerance (:mod:`repro.sweep.faults`): a
:class:`~repro.sweep.faults.RetryPolicy` re-runs failed or timed-out tasks
with deterministic backoff, worker crashes respawn the pool and requeue
only the in-flight tasks, and tasks that exhaust their budget are
quarantined (``SweepResult.failures`` + the store's quarantine tier) so a
sweep completes with partial results instead of aborting.  A
:class:`~repro.sweep.faults.FaultPlan` injects deterministic chaos
(exceptions, hangs, worker kills, shm unlinks) for testing all of it.

The ``distributed`` backend (:mod:`repro.sweep.distributed`) extends all of
this across processes and hosts: a coordinator enqueues the grid into a
filesystem work queue inside the store (:mod:`repro.sweep.queue`), any
number of ``repro sweep-worker`` daemons claim tasks through atomic lease
files, and dead workers' expired leases are reclaimed onto the crash
budget — results stay byte-identical to a serial run.

Public typing surface: :data:`~repro.sweep.runners.Runner` (the runner
callable protocol) and :class:`~repro.sweep.executors.SweepExecutor` (the
executor base class) are importable from here.  ``execute_task`` is an
execution internal owned by :mod:`repro.sweep.executors`; the long-
deprecated package-level re-export has been removed.
"""

from repro.sweep.cache import (
    clear_scenario_cache,
    scenario_cache_enabled,
    scenario_cache_info,
    scenario_data_for,
)
from repro.sweep.distributed import DistributedSweepExecutor, run_worker
from repro.sweep.engine import run_sweep
from repro.sweep.executors import (
    ChunkedStreamingExecutor,
    ExecutorContext,
    ProcessPoolSweepExecutor,
    SerialExecutor,
    SweepExecutor,
    resolve_executor,
)
from repro.sweep.faults import FaultPlan, FaultRule, RetryPolicy, TaskFailure
from repro.sweep.queue import Lease, QueueEntry, QueueStatus, TaskQueue
from repro.sweep.result import SweepResult, read_jsonl
from repro.sweep.runners import Runner, resolve_runner
from repro.sweep.spec import DEFAULT_RUNNER, SweepSpec, SweepTask, derive_seeds
from repro.sweep.store import (
    PruneReport,
    ResultStore,
    StoredResult,
    StoreVerification,
    task_hash,
)

__all__ = [
    "SweepSpec",
    "SweepTask",
    "SweepResult",
    "run_sweep",
    "read_jsonl",
    "Runner",
    "resolve_runner",
    "SweepExecutor",
    "ExecutorContext",
    "SerialExecutor",
    "ProcessPoolSweepExecutor",
    "ChunkedStreamingExecutor",
    "DistributedSweepExecutor",
    "run_worker",
    "TaskQueue",
    "QueueEntry",
    "QueueStatus",
    "Lease",
    "resolve_executor",
    "ResultStore",
    "StoredResult",
    "StoreVerification",
    "PruneReport",
    "task_hash",
    "derive_seeds",
    "DEFAULT_RUNNER",
    "RetryPolicy",
    "FaultPlan",
    "FaultRule",
    "TaskFailure",
    "scenario_data_for",
    "scenario_cache_enabled",
    "scenario_cache_info",
    "clear_scenario_cache",
]
