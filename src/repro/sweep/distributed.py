"""The distributed sweep backend: coordinator executor + worker daemons.

This is the execution layer the ROADMAP promised once the store, retry and
chaos tiers existed: any number of worker *processes* — spawned locally by
the coordinator, started by hand in another terminal, or running on other
hosts that mount the same store directory — drain the store's filesystem
work queue (:mod:`repro.sweep.queue`) and persist results into the shared
content-addressed :class:`~repro.sweep.store.ResultStore`.

Coordinator (:class:`DistributedSweepExecutor`, registered as
``distributed``):

* writes the sweep's execution policy (retry policy, task timeout, fault
  plan, shm manifest, lease timings) into ``queue/config.json``;
* enqueues every pending task as a claimable entry;
* optionally spawns N local ``repro sweep-worker`` daemons (tests, CI,
  single-host runs) and respawns them if they die;
* *tails* the queue and store to reconstruct the executor event contract —
  ``task_started`` / ``task_failed`` / ``task_retried`` /
  ``task_quarantined`` and one terminal outcome per task — purely from
  observations: a lease appearing is a started attempt, a failure record is
  a failed attempt, an entry gone from both queue directories with a stored
  result (or quarantine record) is the terminal outcome;
* reclaims expired leases: a worker that stops heartbeating loses its
  claim, the attempt is charged one crash against the retry policy's
  ``crash_requeues`` budget (exactly like a pool worker death), the task is
  requeued — or quarantined once the budget is spent — and a
  ``lease_reclaimed`` event is emitted.

Because workers always claim the lowest-index pending entry, observing any
activity for task *i* proves every lower-index first attempt was already
claimed — which is how the coordinator emits first-attempt ``task_started``
events in task-index order (contract rule 3) without any channel beyond the
filesystem.

Worker daemon (:func:`run_worker`, the ``repro sweep-worker`` CLI): polls
the queue, claims entries, renews its lease heartbeat on a background
thread while :func:`~repro.sweep.executors.execute_task` runs the task
(store persistence included, identical to every other executor), journals
failed attempts, re-enqueues them while the retry policy allows, and
quarantines terminal failures into the store.  Deterministic
misconfigurations (:func:`~repro.sweep.faults.is_fatal_error`) are recorded
as a fatal payload the coordinator re-raises, matching the serial path.

Determinism: workers execute tasks through the same
:func:`~repro.sweep.executors.execute_task` protocol as every other
executor and each task carries its own seed, so a distributed run is
byte-identical to a serial one at any worker count, including under an
injected :class:`~repro.sweep.faults.FaultPlan` with real worker kills.
Double execution after a lease reclaim (the "dead" worker was merely slow)
is harmless for the same reason: both executions write the same bytes.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Union

from repro.errors import ConfigurationError
from repro.registry import register_executor
from repro.sweep.executors import (
    ExecutorContext,
    SweepExecutor,
    TaskOutcome,
    execute_task,
)
from repro.sweep.faults import (
    KIND_CRASH,
    FaultPlan,
    RetryPolicy,
    failure_from_payload,
    failure_payload,
    fatal_error_from_payload,
    is_fatal_error,
)
from repro.sweep.queue import (
    DEFAULT_LEASE_TIMEOUT,
    Lease,
    QueueEntry,
    TaskQueue,
    default_worker_id,
)
from repro.sweep.spec import SweepTask
from repro.sweep.store import ResultStore, task_hash

__all__ = ["DistributedSweepExecutor", "run_worker"]

logger = logging.getLogger("repro.sweep.distributed")

#: Local daemons spawned when ``workers=None`` never exceed this, however
#: many cores the host has — each one is a full interpreter, not a pool fork.
MAX_DEFAULT_SPAWN = 8


def _crash_payload(message: str, attempt: int) -> Dict[str, Any]:
    """The wire form of a coordinator-detected worker loss."""
    return {
        "type": "WorkerLostError",
        "message": message,
        "kind": KIND_CRASH,
        "injected": False,
        "attempt": attempt,
        "traceback": "",
    }


# -- worker daemon ---------------------------------------------------------------


class _LeaseRenewer(threading.Thread):
    """Heartbeats a held lease (and the worker's liveness file) while a task runs."""

    def __init__(self, lease: Lease, queue: TaskQueue, worker_id: str, interval: float) -> None:
        super().__init__(name="sweep-lease-renewer", daemon=True)
        self.lease = lease
        self.queue = queue
        self.worker_id = worker_id
        self.interval = max(0.05, float(interval))
        self._stopped = threading.Event()

    def run(self) -> None:
        while not self._stopped.wait(self.interval):
            if not self.lease.renew():
                return  # the coordinator declared us dead and took the lease
            self.queue.heartbeat_worker(self.worker_id)

    def stop(self) -> None:
        self._stopped.set()
        self.join(timeout=5.0)


def _run_claimed(store: ResultStore, queue: TaskQueue, lease: Lease, worker_id: str) -> str:
    """Run one claimed entry to a terminal state; returns what happened.

    ``"ok"`` — finished, result persisted (by :func:`execute_task`) and the
    lease released.  ``"failed"`` — the attempt failed: a failure record was
    journaled, and the entry was re-enqueued (retry budget permitting) or
    quarantined into the store.  ``"lost"`` — the coordinator reclaimed the
    lease mid-run; all bookkeeping belongs to the reclaimer.  ``"fatal"`` —
    a deterministic misconfiguration was recorded for the coordinator to
    re-raise; the worker should stop.
    """
    config = queue.read_config()
    entry = lease.entry
    task = SweepTask.from_dict(entry.task)
    attempt = entry.attempt
    policy = RetryPolicy.from_any(config.get("retry_policy"))
    faults = FaultPlan.from_any(config.get("faults")) if config.get("faults") else None
    heartbeat = float(config.get("heartbeat_interval") or max(0.5, queue.lease_timeout / 4.0))
    renewer = _LeaseRenewer(lease, queue, worker_id, heartbeat)
    renewer.start()
    try:
        execute_task(
            task,
            scenario_cache=bool(config.get("scenario_cache", True)),
            store=store,
            shm_manifest=config.get("shm_manifest"),
            timeout=config.get("task_timeout"),
            faults=faults,
            attempt=attempt,
        )
    except Exception as error:
        renewer.stop()
        if is_fatal_error(error):
            queue.record_fatal(failure_payload(error, attempt))
            lease.release()
            return "fatal"
        if lease.lost:
            return "lost"
        payload = failure_payload(error, attempt)
        failures = entry.failures + 1
        will_retry = failures < policy.max_attempts
        delay = policy.delay(entry.task_hash, attempt) if will_retry else 0.0
        # Journal first, re-enqueue second, release last: the entry is never
        # absent from the queue without its failure having been recorded,
        # which is what lets the coordinator order events correctly.
        queue.record_failure(entry, payload, will_retry=will_retry, delay=delay)
        if will_retry:
            queue.enqueue(
                QueueEntry(
                    task=entry.task,
                    task_hash=entry.task_hash,
                    index=entry.index,
                    attempt=attempt + 1,
                    failures=failures,
                    crashes=entry.crashes,
                    not_before=time.time() + delay if delay > 0 else 0.0,
                )
            )
        else:
            store.put_failure(task, failure_from_payload(task, entry.task_hash, payload))
        lease.release()
        return "failed"
    renewer.stop()
    from repro.sweep.shm import consume_degraded_keys

    consume_degraded_keys()  # worker-side observability only; drop the buffer
    lease.release()
    return "ok"


def run_worker(
    store: Union[str, Path, ResultStore],
    *,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.2,
    drain: bool = False,
    max_tasks: Optional[int] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    should_stop: Optional[Callable[[], bool]] = None,
) -> int:
    """Drain *store*'s work queue until stopped; returns tasks processed.

    The daemon loop behind ``repro sweep-worker``: register a liveness
    file, poll ``queue/pending/``, claim the lowest-index entry, run it
    under the coordinator-published execution policy, repeat.  Exits when
    the queue's ``STOP`` marker appears, after ``max_tasks`` claims, when
    *should_stop* returns true, when a fatal misconfiguration is recorded,
    or — with ``drain=True`` — once the queue is empty.

    This function is process-agnostic (tests run it on a thread); the CLI
    entry point additionally calls
    :func:`~repro.sweep.faults.mark_worker_process` so injected
    ``worker-kill`` faults take the real ``os._exit`` path.
    """
    store_obj = ResultStore.from_any(store)
    queue = TaskQueue(store_obj.root, lease_timeout=lease_timeout)
    wid = worker_id or default_worker_id()
    queue.register_worker(wid)
    processed = 0
    try:
        while True:
            if queue.stop_requested():
                break
            if should_stop is not None and should_stop():
                break
            queue.heartbeat_worker(wid)
            lease = queue.claim(wid)
            if lease is None:
                if drain and queue.empty():
                    break
                time.sleep(poll_interval)
                continue
            status = _run_claimed(store_obj, queue, lease, wid)
            processed += 1
            logger.debug("worker %s: task %d attempt %d -> %s",
                         wid, lease.entry.index, lease.entry.attempt, status)
            if status == "fatal":
                break
            if max_tasks is not None and processed >= max_tasks:
                break
    finally:
        queue.deregister_worker(wid)
    return processed


# -- coordinator -----------------------------------------------------------------


class _TaskState:
    """Coordinator-side observation state for one pending task."""

    __slots__ = (
        "task",
        "task_hash",
        "name",
        "started",
        "failed_attempts",
        "next_attempt",
        "failures",
        "crashes",
        "resolved",
        "lease_first_seen",
        "gone_since",
    )

    def __init__(self, task: SweepTask, hash_hex: str) -> None:
        self.task = task
        self.task_hash = hash_hex
        self.name = QueueEntry(task={}, task_hash=hash_hex, index=task.index).name
        #: Attempt numbers whose ``task_started`` was emitted.
        self.started: Set[int] = set()
        #: Attempt numbers whose failure record was processed.
        self.failed_attempts: Set[int] = set()
        self.next_attempt = 1
        self.failures = 0
        self.crashes = 0
        self.resolved = False
        #: When the coordinator first observed a lease, per attempt — the
        #: expiry baseline, so a lease claimed before the coordinator looked
        #: is not declared dead on a stale-looking mtime alone.
        self.lease_first_seen: Dict[int, float] = {}
        #: When the entry first went missing with no terminal record (the
        #: narrow crash window between a worker's record write and release).
        self.gone_since: Optional[float] = None


class _CoordinatorRun:
    """One distributed sweep: enqueue, spawn, tail, reclaim, shut down."""

    def __init__(
        self,
        executor: "DistributedSweepExecutor",
        queue: TaskQueue,
        store: ResultStore,
        tasks: List[SweepTask],
        context: ExecutorContext,
    ) -> None:
        self.executor = executor
        self.queue = queue
        self.store = store
        self.context = context
        self.policy = context.retry_policy
        self.poll_interval = executor.poll_interval
        self.states = [
            _TaskState(task, task_hash(task))
            for task in sorted(tasks, key=lambda task: task.index)
        ]
        self.by_name = {state.name: state for state in self.states}
        self.by_index = {state.task.index: state for state in self.states}
        self.out: "deque[TaskOutcome]" = deque()
        self.procs: List[Dict[str, Any]] = []
        self.fatal_error: Optional[BaseException] = None
        # Worker deaths are expected under chaos plans, but a daemon that
        # dies instantly on every start (broken environment) must not be
        # respawned forever: budget generously above any real crash plan.
        self.respawns_left = 2 * len(self.states) + 8

    # -- lifecycle -----------------------------------------------------------------

    def _fresh_entry(self, state: _TaskState, *, attempt: int = 1) -> QueueEntry:
        return QueueEntry(
            task=state.task.to_dict(),
            task_hash=state.task_hash,
            index=state.task.index,
            attempt=attempt,
            failures=state.failures,
            crashes=state.crashes,
        )

    def _startup(self) -> None:
        queue = self.queue
        queue.clear_stop()
        queue.clear_fatal()
        for name in queue.failure_records():  # journal left by a dead run
            queue.clear_failure(name)
        queue.write_config(self.executor.worker_config(self.context))
        now = time.time()
        for state in self.states:
            lease_path = queue.leases_dir / state.name
            if lease_path.exists():
                # Leftover lease from a previous coordinator against this
                # store.  Expired by mtime: requeue it fresh.  Still fresh: a
                # surviving worker is on it — adopt the lease and let the
                # ordinary tail/reclaim machinery take it from here.
                entry = queue.read_entry(lease_path)
                try:
                    mtime = lease_path.stat().st_mtime
                except OSError:
                    mtime = 0.0
                if entry is None or now - mtime > queue.lease_timeout:
                    queue.requeue_from_lease(state.name, self._fresh_entry(state))
                else:
                    state.lease_first_seen[entry.attempt] = now
                continue
            queue.enqueue(self._fresh_entry(state))
        self._spawn_workers()

    def _spawn_workers(self) -> None:
        for slot in range(self.executor.spawn_count(len(self.states))):
            worker_id = f"spawn-{os.getpid()}-{slot}"
            self.procs.append(
                {"id": worker_id, "generation": 0, "proc": self._spawn_one(worker_id)}
            )

    def _spawn_one(self, worker_id: str) -> subprocess.Popen:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "sweep-worker",
            "--store",
            str(self.store.root),
            "--worker-id",
            worker_id,
            "--poll-interval",
            str(self.executor.worker_poll_interval()),
            "--lease-timeout",
            str(self.queue.lease_timeout),
        ]
        env = os.environ.copy()
        import repro

        src_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
        return subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)

    def _respawn_dead(self) -> None:
        if not self.procs or all(state.resolved for state in self.states):
            return
        for slot in self.procs:
            if slot["proc"].poll() is None:
                continue
            if self.respawns_left <= 0:
                continue
            self.respawns_left -= 1
            slot["generation"] += 1
            worker_id = f"{slot['id']}g{slot['generation']}"
            logger.info("respawning dead sweep worker as %s", worker_id)
            slot["proc"] = self._spawn_one(worker_id)
        if self.respawns_left <= 0 and all(
            slot["proc"].poll() is not None for slot in self.procs
        ):
            raise RuntimeError(
                "distributed sweep workers keep dying; aborting after the "
                "respawn budget was exhausted with unresolved tasks remaining"
            )

    def shutdown(self) -> None:
        try:
            self.queue.request_stop()
        except OSError:  # pragma: no cover - disk-full etc.
            pass
        for slot in self.procs:
            proc = slot["proc"]
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                    proc.kill()
                    proc.wait()

    # -- event emission ------------------------------------------------------------

    def _emit_started(self, state: _TaskState, attempt: int) -> None:
        """Emit any not-yet-emitted ``task_started`` through *attempt*."""
        for number in range(1, attempt + 1):
            if number not in state.started:
                state.started.add(number)
                self.context.on_started(state.task, number)
        state.next_attempt = max(state.next_attempt, attempt)

    def _ensure_first_starts(self, index: int) -> None:
        """Emit first-attempt starts for every task up to *index*, in order.

        Claims are taken in index order, so observed activity at *index*
        proves every lower index's first attempt was already claimed —
        emitting their starts now (in order) satisfies contract rule 3
        without a coordinator→worker channel.
        """
        for state in self.states:
            if state.task.index > index:
                return
            if not state.resolved and not state.started:
                self._emit_started(state, 1)

    def _resolve(self, state: _TaskState, outcome: TaskOutcome) -> None:
        state.resolved = True
        self.out.append(outcome)

    # -- queue tailing -------------------------------------------------------------

    def _process_failure_record(self, name: str) -> bool:
        record = self.queue.read_failure(name)
        self.queue.clear_failure(name)
        if record is None:
            return False
        try:
            index = int(record["index"])
            attempt = int(record["attempt"])
        except (KeyError, ValueError, TypeError):
            return False
        state = self.by_index.get(index)
        if state is None or state.resolved or attempt in state.failed_attempts:
            return False
        state.failed_attempts.add(attempt)
        state.failures += 1
        self._ensure_first_starts(index)
        self._emit_started(state, attempt)
        will_retry = bool(record.get("will_retry"))
        self.context.on_task_failed(
            state.task,
            attempt,
            dict(record.get("error") or {}),
            will_retry,
            float(record.get("delay", 0.0)),
        )
        if will_retry:
            state.next_attempt = max(state.next_attempt, attempt + 1)
        return True

    def _reclaim(self, state: _TaskState, entry: QueueEntry, attempt: int) -> None:
        worker = entry.worker or "unknown"
        state.crashes += 1
        will_retry = state.crashes <= self.policy.crash_requeues
        payload = _crash_payload(
            f"worker {worker!r} stopped heartbeating; its lease expired after "
            f"{self.queue.lease_timeout:g}s",
            attempt,
        )
        self._ensure_first_starts(state.task.index)
        self._emit_started(state, attempt)
        self.context.on_task_failed(state.task, attempt, payload, will_retry, 0.0)
        self.context.on_lease_reclaimed(state.task, attempt, worker, will_retry)
        state.lease_first_seen.pop(attempt, None)
        if will_retry:
            entry.attempt = attempt + 1
            entry.crashes = state.crashes
            entry.not_before = 0.0
            self.queue.requeue_from_lease(state.name, entry)
            state.next_attempt = max(state.next_attempt, attempt + 1)
        else:
            self.queue.discard_lease(state.name)
            failure = failure_from_payload(state.task, state.task_hash, payload)
            self._resolve(state, TaskOutcome(state.task, None, 0.0, failure=failure, attempt=attempt))

    def _scan_leases(self, lease_names: Iterable[str], now: float) -> bool:
        progressed = False
        for name in sorted(lease_names):
            state = self.by_name.get(name)
            if state is None or state.resolved:
                continue
            path = self.queue.leases_dir / name
            entry = self.queue.read_entry(path)
            if entry is None:
                continue  # vanished or half-transitioned; next poll settles it
            attempt = entry.attempt
            if attempt > 1 and (attempt - 1) not in state.failed_attempts:
                # Contract rule 2: the prior attempt's failure must be
                # reported before this retry's start.  Crash requeues were
                # reported by this coordinator already; worker-side failures
                # sit in the journal — process the specific record directly.
                prior = self.queue.failure_name(state.task.index, attempt - 1)
                if (self.queue.failed_dir / prior).exists():
                    progressed = self._process_failure_record(prior) or progressed
            if attempt not in state.started:
                self._ensure_first_starts(state.task.index)
                self._emit_started(state, attempt)
                progressed = True
            if attempt not in state.lease_first_seen:
                state.lease_first_seen[attempt] = now
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            if now > max(mtime, state.lease_first_seen[attempt]) + self.queue.lease_timeout:
                self._reclaim(state, entry, attempt)
                progressed = True
        return progressed

    def _scan_resolution(self, pending: Set[str], leases: Set[str], now: float) -> bool:
        progressed = False
        for state in self.states:
            if state.resolved:
                continue
            if state.name in pending or state.name in leases:
                state.gone_since = None
                continue
            stored = self.store.get(state.task_hash)
            if stored is not None:
                attempt = max(state.next_attempt, max(state.started, default=1))
                self._ensure_first_starts(state.task.index)
                self._emit_started(state, attempt)
                self._resolve(
                    state,
                    TaskOutcome(state.task, stored.result, stored.duration, attempt=attempt),
                )
                progressed = True
                continue
            failure = self.store.get_failure(state.task_hash)
            if failure is not None:
                attempt = max(failure.attempts, max(state.started, default=1))
                self._ensure_first_starts(state.task.index)
                self._emit_started(state, attempt)
                self._resolve(
                    state, TaskOutcome(state.task, None, 0.0, failure=failure, attempt=attempt)
                )
                progressed = True
                continue
            # In neither directory and no terminal record: a worker died in
            # the narrow window around its release.  Give the records one
            # lease timeout to surface, then charge a crash and requeue.
            if state.gone_since is None:
                state.gone_since = now
            elif now - state.gone_since > self.queue.lease_timeout:
                state.gone_since = None
                state.crashes += 1
                attempt = max(state.next_attempt, max(state.started, default=1))
                will_retry = state.crashes <= self.policy.crash_requeues
                payload = _crash_payload(
                    "task entry vanished from the queue without a stored result",
                    attempt,
                )
                self._ensure_first_starts(state.task.index)
                self._emit_started(state, attempt)
                self.context.on_task_failed(state.task, attempt, payload, will_retry, 0.0)
                self.context.on_lease_reclaimed(state.task, attempt, "unknown", will_retry)
                if will_retry:
                    state.next_attempt = attempt + 1
                    self.queue.enqueue(self._fresh_entry(state, attempt=attempt + 1))
                else:
                    terminal = failure_from_payload(state.task, state.task_hash, payload)
                    self._resolve(
                        state,
                        TaskOutcome(state.task, None, 0.0, failure=terminal, attempt=attempt),
                    )
                progressed = True
        return progressed

    def _poll(self) -> bool:
        fatal = self.queue.read_fatal()
        if fatal is not None and self.fatal_error is None:
            self.fatal_error = fatal_error_from_payload(fatal)
        progressed = False
        # Failure journal first, then one snapshot of both queue directories:
        # a record is always written before its entry moves, so this order
        # never reports a terminal outcome ahead of its attempts' failures.
        for name in self.queue.failure_records():
            progressed = self._process_failure_record(name) or progressed
        now = time.time()
        pending = set(self.queue.pending_names())
        leases = set(self.queue.lease_names())
        progressed = self._scan_leases(leases, now) or progressed
        progressed = self._scan_resolution(pending, leases, now) or progressed
        return progressed

    def outcomes(self) -> Iterator[TaskOutcome]:
        self._startup()
        try:
            while any(not state.resolved for state in self.states):
                progressed = self._poll()
                while self.out:
                    progressed = True
                    yield self.out.popleft()
                if self.fatal_error is not None:
                    raise self.fatal_error
                self._respawn_dead()
                if not progressed:
                    time.sleep(self.poll_interval)
            while self.out:
                yield self.out.popleft()
        finally:
            self.shutdown()


@register_executor("distributed", aliases=("queue",))
class DistributedSweepExecutor(SweepExecutor):
    """Coordinator for the shared-store work-queue backend.

    ``workers`` is the number of *local* ``repro sweep-worker`` daemons the
    coordinator spawns for the run: ``None`` (default) spawns one per CPU
    (capped at :data:`MAX_DEFAULT_SPAWN`), ``0`` spawns none — pure
    coordinator mode, for grids drained entirely by externally started
    workers (other terminals, other hosts on a shared filesystem).
    External workers may join a spawned run too; the store is the only
    rendezvous.

    ``lease_timeout`` is how long a claimed task's heartbeat may go silent
    before the worker is declared dead and the task requeued (charged
    against ``RetryPolicy.crash_requeues``); ``heartbeat_interval`` defaults
    to a quarter of it.  ``poll_interval`` is the coordinator's tail cadence.

    Runs without a ``store=`` get a private temporary store (deleted
    afterwards) — the queue protocol needs a shared directory even when the
    caller does not want to keep the results.
    """

    name = "distributed"

    def __init__(
        self,
        workers: Optional[int] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        heartbeat_interval: Optional[float] = None,
        poll_interval: float = 0.05,
    ) -> None:
        if workers is not None and workers < 0:
            raise ConfigurationError(f"workers must be non-negative, got {workers}")
        if lease_timeout <= 0:
            raise ConfigurationError(f"lease_timeout must be positive, got {lease_timeout}")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if poll_interval <= 0:
            raise ConfigurationError(f"poll_interval must be positive, got {poll_interval}")
        self.spawn = workers
        self.lease_timeout = float(lease_timeout)
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = float(poll_interval)

    @property
    def workers(self) -> int:
        if self.spawn is None:
            return min(os.cpu_count() or 1, MAX_DEFAULT_SPAWN)
        return max(1, self.spawn)

    def spawn_count(self, total_tasks: int) -> int:
        """Local daemons to spawn for a *total_tasks*-task run."""
        if self.spawn == 0:
            return 0
        return max(1, min(self.workers, total_tasks))

    def worker_poll_interval(self) -> float:
        """Poll cadence handed to spawned daemons."""
        return min(0.2, max(0.02, self.lease_timeout / 20.0))

    def describe(self) -> str:
        if self.spawn == 0:
            return f"{self.name}(external)"
        return f"{self.name}({self.workers})"

    def worker_config(self, context: ExecutorContext) -> Dict[str, Any]:
        """The execution policy published to workers via ``queue/config.json``."""
        config: Dict[str, Any] = {
            "retry_policy": asdict(context.retry_policy),
            "task_timeout": context.task_timeout,
            "scenario_cache": context.scenario_cache,
            "faults": context.faults.to_dict() if context.faults else None,
            "lease_timeout": self.lease_timeout,
            "heartbeat_interval": self.heartbeat_interval or self.lease_timeout / 4.0,
        }
        manifest = context.shm_manifest
        if manifest is not None:
            try:
                json.dumps(manifest)
            except (TypeError, ValueError):  # pragma: no cover - defensive
                manifest = None
        config["shm_manifest"] = manifest
        return config

    def run(
        self, tasks: Iterable[SweepTask], context: ExecutorContext
    ) -> Iterator[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return
        temp_root: Optional[str] = None
        store_path = context.store_path
        if store_path is None:
            temp_root = tempfile.mkdtemp(prefix="repro-sweep-distributed-")
            store_path = temp_root
        store = ResultStore(store_path)
        queue = TaskQueue(store.root, lease_timeout=self.lease_timeout)
        run = _CoordinatorRun(self, queue, store, tasks, context)
        try:
            yield from run.outcomes()
        finally:
            if temp_root is not None:
                shutil.rmtree(temp_root, ignore_errors=True)
