"""The filesystem work queue behind the distributed sweep backend.

A :class:`TaskQueue` lives inside a result store directory (``<root>/queue/``)
and coordinates any number of worker processes — same host or many hosts
sharing the directory — with nothing but atomic filesystem operations:

* ``pending/<index>.<hash>.json`` — one :class:`QueueEntry` per runnable
  task attempt: the task's dict form, its canonical content hash, the
  attempt number and the failure/crash counters carried across re-enqueues.
  Entries are written atomically (temp file + ``os.replace``) and named with
  a zero-padded task index so lexicographic directory order *is* task-index
  order — workers claim the lowest pending index first, which is what lets
  the coordinator infer first-attempt start order from observations alone.
* ``leases/<index>.<hash>.json`` — a claimed entry.  Claiming **is**
  ``os.replace(pending/name, leases/name)``: rename is atomic on POSIX, so
  exactly one worker wins a contended claim (the losers see
  ``FileNotFoundError`` and move on) and an entry is always in exactly one
  of the two directories.  The lease file's *mtime* is the worker's
  heartbeat — renewed by ``os.utime`` while the task runs — and a lease
  whose mtime goes stale for longer than the coordinator's ``lease_timeout``
  is considered dead and reclaimed (requeued on the crash budget).
* ``failed/<index>.<attempt>.json`` — one record per failed execution
  attempt, written by the failing worker *before* it re-enqueues or
  quarantines, so the coordinator can emit ``task_failed``/``task_retried``
  events in contract order.
* ``workers/<worker_id>.json`` — one liveness file per worker daemon,
  mtime-touched alongside lease renewals; ``repro sweep --status`` counts
  fresh ones as live.
* ``config.json`` — the coordinator-written execution policy (retry policy,
  task timeout, fault plan, shm manifest, lease timings) every worker reads
  per claim, so external daemons run tasks under exactly the sweep's
  resilience settings.
* ``STOP`` — a marker file; workers exit their poll loop when it appears.
* ``fatal.json`` — a deterministic-misconfiguration payload; the
  coordinator re-raises it and aborts the sweep (matching the serial path).

Everything here is plain JSON + rename/utime/unlink, so the queue needs no
server, no locks and no network — a shared directory is the whole fabric.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.sweep.store import ResultStore, _atomic_write_bytes

__all__ = [
    "TaskQueue",
    "QueueEntry",
    "Lease",
    "QueueStatus",
    "WorkerStatus",
    "DEFAULT_LEASE_TIMEOUT",
]

logger = logging.getLogger("repro.sweep.queue")

#: Seconds a lease's heartbeat may go stale before it is considered dead.
DEFAULT_LEASE_TIMEOUT = 30.0


@dataclass
class QueueEntry:
    """One runnable task attempt as it travels through the queue."""

    #: The task's :meth:`~repro.sweep.spec.SweepTask.to_dict` form.
    task: Dict[str, Any]
    #: The task's canonical content hash (:func:`~repro.sweep.store.task_hash`).
    task_hash: str
    #: The task's expansion index (also encoded in the entry filename).
    index: int
    #: Attempt number this entry will execute as (1 on first enqueue).
    attempt: int = 1
    #: Failed executions accumulated so far (drives ``max_attempts``).
    failures: int = 0
    #: Crash requeues accumulated so far (drives ``crash_requeues``).
    crashes: int = 0
    #: Epoch seconds before which the entry must not be claimed (backoff).
    not_before: float = 0.0
    #: Claiming worker's id, recorded on the lease copy of the entry.
    worker: Optional[str] = None

    @property
    def name(self) -> str:
        """The entry's filename, identical in ``pending/`` and ``leases/``."""
        return f"{self.index:08d}.{self.task_hash}.json"

    def to_dict(self) -> Dict[str, Any]:
        """A JSON mapping that round-trips through :meth:`from_dict`."""
        record: Dict[str, Any] = {
            "task": dict(self.task),
            "hash": self.task_hash,
            "index": self.index,
            "attempt": self.attempt,
            "failures": self.failures,
            "crashes": self.crashes,
        }
        if self.not_before:
            record["not_before"] = self.not_before
        if self.worker is not None:
            record["worker"] = self.worker
        return record

    @classmethod
    def from_dict(cls, mapping: Dict[str, Any]) -> "QueueEntry":
        """Rebuild an entry from its :meth:`to_dict` form."""
        return cls(
            task=dict(mapping["task"]),
            task_hash=str(mapping["hash"]),
            index=int(mapping["index"]),
            attempt=int(mapping.get("attempt", 1)),
            failures=int(mapping.get("failures", 0)),
            crashes=int(mapping.get("crashes", 0)),
            not_before=float(mapping.get("not_before", 0.0)),
            worker=mapping.get("worker"),
        )


class Lease:
    """A claimed queue entry: the claim's file handle plus renewal/release.

    The lease file's mtime is the liveness signal — :meth:`renew` touches it
    and reports whether the lease is still held (a coordinator that declared
    this worker dead removes or requeues the file, after which renewal
    fails and the worker should abandon its bookkeeping for the task).
    """

    def __init__(self, queue: "TaskQueue", path: Path, entry: QueueEntry) -> None:
        self.queue = queue
        self.path = path
        self.entry = entry
        self.lost = False

    def renew(self) -> bool:
        """Touch the lease heartbeat; ``False`` once the lease was taken away."""
        if self.lost:
            return False
        try:
            os.utime(self.path)
            return True
        except OSError:
            self.lost = True
            return False

    def release(self) -> None:
        """Drop the lease file (the claimed entry leaves the queue)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


@dataclass(frozen=True)
class WorkerStatus:
    """One registered worker daemon, as seen by ``--status``."""

    worker_id: str
    #: Seconds since the worker's last heartbeat touch.
    age: float
    #: Whether the heartbeat is fresh (within the liveness window).
    live: bool


@dataclass
class QueueStatus:
    """A point-in-time snapshot of a store's queue and worker population."""

    pending: int = 0
    claimed: int = 0
    #: Claimed entries whose lease heartbeat has gone stale.
    expired: int = 0
    #: Unprocessed per-attempt failure records.
    failure_records: int = 0
    #: Finished results in the store's ``tasks/`` tier.
    stored: int = 0
    #: Quarantined tasks in the store's ``quarantine/`` tier.
    quarantined: int = 0
    workers: List[WorkerStatus] = field(default_factory=list)
    stop_requested: bool = False

    @property
    def live_workers(self) -> int:
        """Workers with a fresh heartbeat."""
        return sum(1 for worker in self.workers if worker.live)


def default_worker_id() -> str:
    """A host-unique worker id (``<hostname>-<pid>``)."""
    return f"{socket.gethostname()}-{os.getpid()}"


class TaskQueue:
    """The ``queue/`` tier of one result store directory (created lazily)."""

    def __init__(
        self,
        store_root: Union[str, Path],
        *,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    ) -> None:
        self.store_root = Path(store_root)
        self.root = self.store_root / "queue"
        self.lease_timeout = float(lease_timeout)

    @classmethod
    def for_store(cls, store: ResultStore, **kwargs: Any) -> "TaskQueue":
        """The queue living inside *store*'s root directory."""
        return cls(store.root, **kwargs)

    def __repr__(self) -> str:
        return f"TaskQueue(root={str(self.root)!r})"

    # -- layout --------------------------------------------------------------------

    @property
    def pending_dir(self) -> Path:
        return self.root / "pending"

    @property
    def leases_dir(self) -> Path:
        return self.root / "leases"

    @property
    def failed_dir(self) -> Path:
        return self.root / "failed"

    @property
    def workers_dir(self) -> Path:
        return self.root / "workers"

    @property
    def config_path(self) -> Path:
        return self.root / "config.json"

    @property
    def stop_path(self) -> Path:
        return self.root / "STOP"

    @property
    def fatal_path(self) -> Path:
        return self.root / "fatal.json"

    @staticmethod
    def _names(directory: Path) -> List[str]:
        """Sorted visible entry filenames of *directory* (missing = empty)."""
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        return sorted(name for name in names if name.endswith(".json"))

    @staticmethod
    def _read_json(path: Path) -> Optional[Dict[str, Any]]:
        """The JSON mapping at *path*, or ``None`` if unreadable/missing."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    @staticmethod
    def _write_json(path: Path, record: Dict[str, Any]) -> None:
        _atomic_write_bytes(path, json.dumps(record, sort_keys=True).encode("utf-8"))

    @staticmethod
    def _unlink(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- pending entries and claims ------------------------------------------------

    def enqueue(self, entry: QueueEntry) -> Path:
        """Publish *entry* as claimable work; returns its pending path."""
        path = self.pending_dir / entry.name
        self._write_json(path, entry.to_dict())
        return path

    def pending_names(self) -> List[str]:
        """Sorted (= task-index-ordered) pending entry filenames."""
        return self._names(self.pending_dir)

    def lease_names(self) -> List[str]:
        """Sorted claimed entry filenames."""
        return self._names(self.leases_dir)

    def read_entry(self, path: Path) -> Optional[QueueEntry]:
        """The :class:`QueueEntry` at *path*, or ``None`` if unreadable."""
        record = self._read_json(path)
        if record is None:
            return None
        try:
            return QueueEntry.from_dict(record)
        except (KeyError, ValueError, TypeError):
            logger.warning("skipping malformed queue entry %s", path)
            return None

    def claim(self, worker_id: str, *, now: Optional[float] = None) -> Optional[Lease]:
        """Atomically claim the lowest-index claimable pending entry.

        The claim is the ``os.replace`` of the entry from ``pending/`` into
        ``leases/`` — atomic, so under contention exactly one worker wins
        and the rest silently try the next entry.  Entries whose backoff
        window (``not_before``) has not elapsed are skipped.  Returns the
        :class:`Lease` (its file freshly stamped with the worker id and a
        current heartbeat), or ``None`` when nothing is claimable.
        """
        clock = time.time() if now is None else now
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        for name in self.pending_names():
            pending_path = self.pending_dir / name
            entry = self.read_entry(pending_path)
            if entry is None:
                continue
            if entry.not_before > clock:
                continue
            lease_path = self.leases_dir / name
            try:
                os.replace(pending_path, lease_path)
            except FileNotFoundError:
                continue  # another worker won this entry; try the next one
            entry.worker = worker_id
            entry.not_before = 0.0
            self._write_json(lease_path, entry.to_dict())
            return Lease(self, lease_path, entry)
        return None

    def requeue_from_lease(self, name: str, entry: QueueEntry) -> None:
        """Put *entry* back into ``pending/`` and drop the lease called *name*.

        The coordinator's reclaim path: the fresh pending entry is written
        first, then the dead lease is unlinked, so the task is never
        invisible to other workers in between.
        """
        entry.worker = None
        self.enqueue(entry)
        self._unlink(self.leases_dir / name)

    def discard_lease(self, name: str) -> None:
        """Drop the lease called *name* without requeueing (quarantine path)."""
        self._unlink(self.leases_dir / name)

    def empty(self) -> bool:
        """Whether no entry is pending or claimed."""
        return not self.pending_names() and not self.lease_names()

    # -- failure records -----------------------------------------------------------

    @staticmethod
    def failure_name(index: int, attempt: int) -> str:
        return f"{index:08d}.{attempt:03d}.json"

    def record_failure(
        self,
        entry: QueueEntry,
        payload: Dict[str, Any],
        *,
        will_retry: bool,
        delay: float,
    ) -> None:
        """Journal one failed execution attempt for the coordinator to emit."""
        record = {
            "index": entry.index,
            "hash": entry.task_hash,
            "attempt": entry.attempt,
            "will_retry": will_retry,
            "delay": delay,
            "error": dict(payload),
        }
        self._write_json(self.failed_dir / self.failure_name(entry.index, entry.attempt), record)

    def failure_records(self) -> List[str]:
        """Sorted unprocessed failure-record filenames."""
        return self._names(self.failed_dir)

    def read_failure(self, name: str) -> Optional[Dict[str, Any]]:
        """The failure record called *name*, or ``None`` if unreadable."""
        return self._read_json(self.failed_dir / name)

    def clear_failure(self, name: str) -> None:
        """Drop the (processed) failure record called *name*."""
        self._unlink(self.failed_dir / name)

    # -- execution config ----------------------------------------------------------

    def write_config(self, config: Dict[str, Any]) -> None:
        """Publish the coordinator's execution policy for workers to read."""
        self._write_json(self.config_path, config)

    def read_config(self) -> Dict[str, Any]:
        """The published execution policy (empty when none was written)."""
        return self._read_json(self.config_path) or {}

    # -- stop marker and fatal records ---------------------------------------------

    def request_stop(self) -> None:
        """Ask every polling worker to exit after its current task."""
        _atomic_write_bytes(self.stop_path, b"")

    def clear_stop(self) -> None:
        self._unlink(self.stop_path)

    def stop_requested(self) -> bool:
        return self.stop_path.exists()

    def record_fatal(self, payload: Dict[str, Any]) -> None:
        """Journal a deterministic misconfiguration; the coordinator re-raises it."""
        self._write_json(self.fatal_path, dict(payload))

    def read_fatal(self) -> Optional[Dict[str, Any]]:
        return self._read_json(self.fatal_path)

    def clear_fatal(self) -> None:
        self._unlink(self.fatal_path)

    # -- worker registry -----------------------------------------------------------

    def register_worker(self, worker_id: str) -> None:
        """Create (or refresh) the liveness file for *worker_id*."""
        record = {"worker_id": worker_id, "pid": os.getpid(), "host": socket.gethostname()}
        self._write_json(self.workers_dir / f"{worker_id}.json", record)

    def heartbeat_worker(self, worker_id: str) -> None:
        """Touch *worker_id*'s liveness file (recreating it if needed)."""
        path = self.workers_dir / f"{worker_id}.json"
        try:
            os.utime(path)
        except OSError:
            self.register_worker(worker_id)

    def deregister_worker(self, worker_id: str) -> None:
        self._unlink(self.workers_dir / f"{worker_id}.json")

    def worker_statuses(self, *, now: Optional[float] = None) -> Iterator[WorkerStatus]:
        """Every registered worker with its heartbeat age and liveness."""
        clock = time.time() if now is None else now
        window = max(self.lease_timeout, 1.0)
        for name in self._names(self.workers_dir):
            path = self.workers_dir / name
            try:
                age = max(0.0, clock - path.stat().st_mtime)
            except OSError:
                continue
            yield WorkerStatus(worker_id=name[: -len(".json")], age=age, live=age <= window)

    # -- status --------------------------------------------------------------------

    def status(self, store: Optional[ResultStore] = None) -> QueueStatus:
        """A snapshot of queue depth, lease health, store counts and workers.

        Read-only: nothing is claimed, reclaimed or touched.  *store*
        defaults to the result store this queue lives in.
        """
        store = store if store is not None else ResultStore(self.store_root)
        now = time.time()
        status = QueueStatus(
            pending=len(self.pending_names()),
            failure_records=len(self.failure_records()),
            stored=len(store),
            quarantined=sum(1 for _ in store.failure_hashes()),
            workers=list(self.worker_statuses(now=now)),
            stop_requested=self.stop_requested(),
        )
        for name in self.lease_names():
            try:
                mtime = (self.leases_dir / name).stat().st_mtime
            except OSError:
                continue
            status.claimed += 1
            if now - mtime > self.lease_timeout:
                status.expired += 1
        return status
