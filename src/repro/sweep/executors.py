"""Pluggable sweep executors: where and how sweep tasks run.

:func:`~repro.sweep.engine.run_sweep` no longer hard-wires a local process
pool — it hands the pending task list to a :class:`SweepExecutor`, an object
that schedules tasks and streams back one :class:`TaskOutcome` per task, in
whatever order they complete.  Executors are registered components
(:data:`repro.registry.executor_registry`), selected by name, JSON spec or
instance::

    run_sweep(spec, executor="serial")
    run_sweep(spec, executor={"name": "process-pool", "options": {"max_workers": 8}})
    run_sweep(spec, executor=ChunkedStreamingExecutor(max_workers=8, window=32))

Three executors ship here:

* ``serial`` — every task inline in the coordinating process, in task order.
  The deterministic reference path and the default.
* ``process-pool`` — every task submitted to a
  :class:`concurrent.futures.ProcessPoolExecutor` up front; results stream
  back in completion order.  ``run_sweep(workers=N)`` is a deprecated alias
  for this executor.
* ``chunked-streaming`` — a process pool with a *bounded in-flight window*:
  at most ``window`` tasks are submitted-but-unfinished at any moment, and a
  new task is submitted as each one completes.  For very large grids this
  keeps coordinator memory (futures, pickled payloads) proportional to the
  window, not the grid.

Event ordering contract (all executors)
---------------------------------------

The engine emits ``task_started`` from the executor's ``on_started``
callback and ``task_finished`` as outcomes arrive.  Every executor must
guarantee, and the built-ins do:

1. every task yields exactly one ``task_started`` and one ``task_finished``;
2. a task's ``task_started`` precedes its ``task_finished``;
3. ``task_started`` events are emitted in task-index order;
4. ``task_started`` marks *submission into the executor's in-flight window*
   — serial's window is 1 (strict start/finish interleave, task order),
   process-pool's is unbounded (all starts burst before the first finish),
   chunked-streaming's is ``window`` (at most ``window`` started-but-
   unfinished tasks at any moment);
5. per-task ``duration`` is measured worker-side around the task's actual
   execution (:func:`execute_task`), identically for every executor.

Determinism: executors only schedule — every task carries its own seed and
nothing about placement or completion order feeds back into a task — so all
executors, at any worker count, produce byte-identical results (the engine
re-orders outcomes by task index).
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, Mapping, NamedTuple, Optional, Tuple

from repro.errors import ConfigurationError
from repro.registry import executor_registry, register_executor
from repro.session.result import RunResult
from repro.session.simulation import Simulation
from repro.sweep.spec import SweepTask

__all__ = [
    "SweepExecutor",
    "ExecutorContext",
    "TaskOutcome",
    "SerialExecutor",
    "ProcessPoolSweepExecutor",
    "ChunkedStreamingExecutor",
    "resolve_executor",
    "executor_from_any",
    "execute_task",
]


class TaskOutcome(NamedTuple):
    """One finished task as streamed back by an executor."""

    task: SweepTask
    result: RunResult
    #: Worker-side wall-clock seconds for this task.
    duration: float


@dataclass(frozen=True)
class ExecutorContext:
    """What the engine hands an executor besides the tasks themselves.

    ``on_started`` must be called exactly once per task, at the moment the
    task enters the executor's in-flight window (see the module docstring's
    ordering contract); the engine turns it into the ``task_started`` event.
    ``store_path`` is the content-addressed result store the workers persist
    into (and read cached scenario data from), or ``None``.  ``shm_manifest``
    is the shared-memory scenario-array manifest published by the engine's
    :class:`~repro.sweep.shm.ScenarioArrayServer` (or ``None`` when the tier
    is off); it is a plain dict so it pickles to workers cheaply.
    """

    scenario_cache: bool = True
    store_path: Optional[str] = None
    on_started: Callable[[SweepTask], None] = field(default=lambda task: None)
    shm_manifest: Optional[Dict[str, Any]] = None


def execute_task(
    task: SweepTask,
    *,
    scenario_cache: bool = True,
    store: Optional[Any] = None,
    shm_manifest: Optional[Dict[str, Any]] = None,
) -> Tuple[RunResult, float]:
    """Run one sweep task to completion; returns ``(result, seconds)``.

    This is the whole per-worker protocol: materialise the task's
    :class:`~repro.session.config.SessionConfig`, fetch (or build) the
    scenario data through the per-worker memo (backed by the store's
    scenario tier when one is given), assemble a
    :class:`~repro.session.simulation.Simulation`, hand it to the task's
    registered runner, and return the runner's JSON-exportable
    :class:`RunResult`.  The raw ``protocol_result`` is dropped — it is not
    part of the exportable surface and would dominate pickling cost.

    With ``scenario_cache=True`` (the default) tasks sharing a
    ``(scenario, ScenarioConfig)`` key reuse one built
    :class:`~repro.datasets.scenarios.ScenarioData` per process; runners
    registered as scenario-mutating get a private deep copy (copy-on-write),
    so results are byte-identical with and without the cache.

    When *store* (a :class:`~repro.sweep.store.ResultStore` or its root
    path) is given, the finished result is persisted under the task's
    content hash *before* returning — so a killed sweep keeps every task
    that completed, which is what makes resume work.
    """
    from repro.sweep.cache import (
        runner_mutates_scenario,
        scenario_cache_enabled,
        scenario_data_for,
    )
    from repro.sweep.runners import resolve_runner
    from repro.sweep.store import ResultStore

    store_obj = ResultStore.from_any(store)
    runner = resolve_runner(task.runner)
    started = time.perf_counter()
    config = task.session_config()
    data = None
    if scenario_cache and scenario_cache_enabled():
        mutates = runner_mutates_scenario(runner)
        data = scenario_data_for(config, mutates=mutates, store=store_obj)
        if shm_manifest and not mutates:
            # Shared-memory tier: reuse the coordinator-published recall
            # arrays instead of rebuilding |P| x |P| products per process.
            # Best-effort — on any failure the ordinary build path applies.
            from repro.sweep.shm import adopt_shared_matrix, scenario_shm_key

            adopt_shared_matrix(data.network, scenario_shm_key(config), shm_manifest)
    simulation = Simulation.from_config(config, data=data)
    result = runner(simulation, dict(task.options))
    result.protocol_result = None
    duration = time.perf_counter() - started
    if store_obj is not None:
        store_obj.put(task, result, duration)
    return result, duration


def _execute_payload(
    payload: Dict[str, object],
    scenario_cache: bool = True,
    store_path: Optional[str] = None,
    shm_manifest: Optional[Dict[str, Any]] = None,
) -> Tuple[RunResult, float]:
    """Process-pool entry point: rebuild the task from its dict form and run it."""
    return execute_task(
        SweepTask.from_dict(payload),
        scenario_cache=scenario_cache,
        store=store_path,
        shm_manifest=shm_manifest,
    )


class SweepExecutor(ABC):
    """The executor protocol: schedule tasks, stream back outcomes.

    Implementations receive the *pending* task list (resume already removed
    tasks with stored results) and an :class:`ExecutorContext`, and yield one
    :class:`TaskOutcome` per task in any order.  They must honour the event
    ordering contract documented in the module docstring, run every task
    through :func:`execute_task` (or :func:`_execute_payload` across a
    process boundary) so durations and store persistence behave identically
    everywhere, and never let scheduling feed back into task inputs.
    """

    #: Registered name, for display and the ``SweepResult.executor`` field.
    name: str = "?"

    @abstractmethod
    def run(
        self, tasks: Iterable[SweepTask], context: ExecutorContext
    ) -> Iterator[TaskOutcome]:
        """Execute *tasks*, yielding a :class:`TaskOutcome` per task."""

    @property
    def workers(self) -> int:
        """Informational worker count (results never depend on it)."""
        return 1

    def describe(self) -> str:
        """A short human-readable identifier for logs and JSONL headers."""
        return self.name


@register_executor("serial", aliases=("inline",))
class SerialExecutor(SweepExecutor):
    """Run every task inline in the coordinating process, in task order.

    The deterministic reference path: in-flight window of 1, so
    ``task_started`` / ``task_finished`` strictly interleave.
    """

    name = "serial"

    def run(
        self, tasks: Iterable[SweepTask], context: ExecutorContext
    ) -> Iterator[TaskOutcome]:
        for task in tasks:
            context.on_started(task)
            result, duration = execute_task(
                task,
                scenario_cache=context.scenario_cache,
                store=context.store_path,
                shm_manifest=context.shm_manifest,
            )
            yield TaskOutcome(task, result, duration)


def _effective_workers(max_workers: Optional[int], total: int) -> int:
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(f"max_workers must be at least 1, got {max_workers}")
    limit = max_workers if max_workers is not None else (os.cpu_count() or 1)
    return max(1, min(limit, total))


@register_executor("process-pool", aliases=("pool",))
class ProcessPoolSweepExecutor(SweepExecutor):
    """Fan tasks out over a ``concurrent.futures`` process pool.

    Every task is submitted up front (``task_started`` bursts), outcomes
    stream back in completion order.  ``max_workers=None`` uses the CPU
    count; with one worker (or one task) it degrades to the serial path —
    same results, no pool overhead.
    """

    name = "process-pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be at least 1, got {max_workers}")
        self.max_workers = max_workers

    @property
    def workers(self) -> int:
        return self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)

    def describe(self) -> str:
        return f"{self.name}({self.workers})"

    def run(
        self, tasks: Iterable[SweepTask], context: ExecutorContext
    ) -> Iterator[TaskOutcome]:
        tasks = list(tasks)
        workers = _effective_workers(self.max_workers, len(tasks))
        if workers == 1 or len(tasks) <= 1:
            yield from SerialExecutor().run(tasks, context)
            return
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {}
            for task in tasks:
                context.on_started(task)
                future = pool.submit(
                    _execute_payload,
                    task.to_dict(),
                    context.scenario_cache,
                    context.store_path,
                    context.shm_manifest,
                )
                pending[future] = task
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    task = pending.pop(future)
                    result, duration = future.result()
                    yield TaskOutcome(task, result, duration)


@register_executor("chunked-streaming", aliases=("chunked",))
class ChunkedStreamingExecutor(SweepExecutor):
    """A process pool with a bounded in-flight window, for very large grids.

    At most ``window`` tasks (default: ``2 * max_workers``, never below the
    worker count) are submitted-but-unfinished at any moment; each completion
    refills the window from the task iterator.  Coordinator-side memory —
    futures, pickled task payloads — stays proportional to the window rather
    than the grid, which is what lets a million-task spec stream through a
    box that could never hold a million futures.
    """

    name = "chunked-streaming"

    def __init__(
        self, max_workers: Optional[int] = None, window: Optional[int] = None
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be at least 1, got {max_workers}")
        if window is not None and window < 1:
            raise ConfigurationError(f"window must be at least 1, got {window}")
        self.max_workers = max_workers
        self._window = window

    @property
    def workers(self) -> int:
        return self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)

    def window_size(self, workers: int) -> int:
        """The in-flight window for *workers* pool processes."""
        if self._window is not None:
            return max(self._window, workers)
        return 2 * workers

    def describe(self) -> str:
        return f"{self.name}({self.workers}, window={self.window_size(self.workers)})"

    def run(
        self, tasks: Iterable[SweepTask], context: ExecutorContext
    ) -> Iterator[TaskOutcome]:
        # Deliberately no list(tasks): the iterator is consumed lazily so a
        # huge grid is never fully materialised on the coordinator.  The
        # worker count falls back to the configured/CPU limit (the total is
        # unknown up front) and the pool drains naturally when fewer tasks
        # than workers exist.
        iterator = iter(tasks)
        workers = _effective_workers(self.max_workers, self.workers)
        window = self.window_size(workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending: Dict[Any, SweepTask] = {}

            def submit_next() -> bool:
                task = next(iterator, None)
                if task is None:
                    return False
                context.on_started(task)
                future = pool.submit(
                    _execute_payload,
                    task.to_dict(),
                    context.scenario_cache,
                    context.store_path,
                    context.shm_manifest,
                )
                pending[future] = task
                return True

            while len(pending) < window and submit_next():
                pass
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    task = pending.pop(future)
                    result, duration = future.result()
                    yield TaskOutcome(task, result, duration)
                    submit_next()


def resolve_executor(
    executor: Optional[Any] = None, *, workers: Optional[int] = None
) -> SweepExecutor:
    """The :class:`SweepExecutor` for an ``executor=`` / ``workers=`` pair.

    *executor* may be an executor instance (returned as-is), a registered
    name (``"serial"``, ``"process-pool"``, ``"chunked-streaming"``) or a
    JSON-style spec ``{"name": ..., "options": {...}}``.  *workers* is the
    legacy knob: ``None``/``1`` resolve to the serial executor, ``N > 1`` to
    a process pool with ``N`` workers.  Giving both is ambiguous and raises.
    """
    if executor is not None and workers is not None:
        raise ConfigurationError(
            "executor= and workers= are mutually exclusive; "
            "pass the worker count inside the executor spec, e.g. "
            '{"name": "process-pool", "options": {"max_workers": N}}'
        )
    if executor is None:
        if workers is None or workers == 1:
            return SerialExecutor()
        if workers < 1:
            raise ConfigurationError(f"workers must be at least 1, got {workers}")
        return ProcessPoolSweepExecutor(max_workers=workers)
    if isinstance(executor, SweepExecutor):
        return executor
    if isinstance(executor, str):
        return executor_registry.create(executor)
    if isinstance(executor, Mapping):
        extra = sorted(set(executor) - {"name", "options"})
        if extra:
            raise ConfigurationError(
                f"unknown executor spec keys {extra}; valid keys: ['name', 'options']"
            )
        if "name" not in executor:
            raise ConfigurationError("an executor spec needs a 'name' key")
        options = dict(executor.get("options") or {})
        return executor_registry.create(executor["name"], **options)
    raise ConfigurationError(
        "expected an executor name, spec mapping or SweepExecutor instance, "
        f"got {type(executor).__name__}"
    )


def executor_from_any(
    executor: Optional[Any] = None, workers: Optional[int] = None
) -> SweepExecutor:
    """Like :func:`resolve_executor`, but *executor* wins when both are given.

    The experiment drivers keep their long-standing ``workers=N`` parameter
    as a convenience and additionally accept ``executor=``; this helper
    implements that precedence without tripping the mutual-exclusion check.
    """
    if executor is not None:
        return resolve_executor(executor)
    return resolve_executor(workers=workers)
