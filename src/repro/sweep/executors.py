"""Pluggable sweep executors: where and how sweep tasks run.

:func:`~repro.sweep.engine.run_sweep` no longer hard-wires a local process
pool — it hands the pending task list to a :class:`SweepExecutor`, an object
that schedules tasks and streams back one :class:`TaskOutcome` per task, in
whatever order they complete.  Executors are registered components
(:data:`repro.registry.executor_registry`), selected by name, JSON spec or
instance::

    run_sweep(spec, executor="serial")
    run_sweep(spec, executor={"name": "process-pool", "options": {"max_workers": 8}})
    run_sweep(spec, executor=ChunkedStreamingExecutor(max_workers=8, window=32))

Three executors ship here:

* ``serial`` — every task inline in the coordinating process, in task order.
  The deterministic reference path and the default.
* ``process-pool`` — every task submitted to a
  :class:`concurrent.futures.ProcessPoolExecutor` up front; results stream
  back in completion order.  ``run_sweep(workers=N)`` is a deprecated alias
  for this executor.
* ``chunked-streaming`` — a process pool with a *bounded in-flight window*:
  at most ``window`` tasks are submitted-but-unfinished at any moment, and a
  new task is submitted as each one completes.  For very large grids this
  keeps coordinator memory (futures, pickled payloads) proportional to the
  window, not the grid.

A fourth backend, ``distributed`` (:mod:`repro.sweep.distributed`), runs
tasks in separate worker *daemons* — spawned locally or started by hand on
any host sharing the store directory — coordinated entirely through the
store's filesystem work queue (:mod:`repro.sweep.queue`).  It honours the
same contract below; its ``task_started`` events are reconstructed from
queue observations and it additionally reports reclaimed leases through
``on_lease_reclaimed``.

The legacy ``run_sweep(workers=N)`` parameter is a deprecated alias for the
process pool; prefer an executor spec — ``--executor process-pool``
``--executor-options '{"max_workers": N}'`` on the CLI, or
``executor={"name": "process-pool", "options": {"max_workers": N}}`` in
code.

Event ordering contract (all executors)
---------------------------------------

The engine emits ``task_started`` from the executor's ``on_started``
callback and ``task_finished`` as outcomes arrive.  Every executor must
guarantee, and the built-ins do:

1. every task yields exactly one ``task_started`` per *execution attempt*
   and exactly one terminal event — ``task_finished`` on success,
   ``task_quarantined`` after its retry budget is exhausted;
2. a task's first ``task_started`` precedes its terminal event, and every
   retry's ``task_started`` follows the failed attempt it retries;
3. *first-attempt* ``task_started`` events are emitted in task-index order
   (retries re-enter the window as slots free up and may interleave);
4. ``task_started`` marks *submission into the executor's in-flight window*
   — serial's window is 1 (strict start/finish interleave, task order),
   process-pool's is unbounded (all starts burst before the first finish),
   chunked-streaming's is ``window`` (at most ``window`` started-but-
   unfinished tasks at any moment);
5. per-task ``duration`` is measured worker-side around the task's actual
   execution (:func:`execute_task`), identically for every executor.

Without retries (the default policy) attempt numbers are all 1 and rules
1–3 reduce to the original one-start/one-finish contract.

Fault tolerance (:mod:`repro.sweep.faults`): a failed attempt (exception or
worker-side timeout) is reported through the context's ``on_task_failed``
callback and re-enqueued while the :class:`~repro.sweep.faults.RetryPolicy`
allows, then surfaced as a quarantine outcome (``outcome.failure`` set,
``outcome.result`` ``None``) instead of aborting the sweep.  The pool-backed
executors additionally survive worker death: on ``BrokenProcessPool`` they
respawn the pool and requeue only the in-flight attempts (budgeted by
``RetryPolicy.crash_requeues``, separate from failure retries).

Determinism: executors only schedule — every task carries its own seed and
nothing about placement, completion order or retry history feeds back into
a task — so all executors, at any worker count, produce byte-identical
results (the engine re-orders outcomes by task index), including under an
injected :class:`~repro.sweep.faults.FaultPlan` whose surviving tasks are
re-run to success.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import ConfigurationError
from repro.registry import executor_registry, register_executor
from repro.session.result import RunResult
from repro.session.simulation import Simulation
from repro.sweep.faults import (
    FaultPlan,
    RetryPolicy,
    TaskFailure,
    crash_payload,
    failure_from_payload,
    failure_payload,
    fatal_error_from_payload,
    is_fatal_error,
    mark_worker_process,
    task_timeout_guard,
    trigger_fault,
)
from repro.sweep.spec import SweepTask

__all__ = [
    "SweepExecutor",
    "ExecutorContext",
    "TaskOutcome",
    "SerialExecutor",
    "ProcessPoolSweepExecutor",
    "ChunkedStreamingExecutor",
    "resolve_executor",
    "executor_from_any",
    "execute_task",
]


class TaskOutcome(NamedTuple):
    """One terminal task outcome as streamed back by an executor.

    Success sets ``result``; quarantine (the task exhausted its retry
    budget) sets ``failure`` and leaves ``result`` ``None``.  ``degraded``
    lists the shared-memory scenario keys this task fell back from (empty
    in the ordinary case); ``attempt`` is the attempt number that produced
    the outcome (1 unless the task was retried or crash-requeued).
    """

    task: SweepTask
    result: Optional[RunResult]
    #: Worker-side wall-clock seconds for this task.
    duration: float
    failure: Optional[TaskFailure] = None
    degraded: Tuple[str, ...] = ()
    attempt: int = 1


def _noop_started(task: SweepTask, attempt: int = 1) -> None:
    return None


def _noop_failed(
    task: SweepTask, attempt: int, error: Dict[str, Any], will_retry: bool, delay: float
) -> None:
    return None


def _noop_reclaimed(task: SweepTask, attempt: int, worker: str, will_retry: bool) -> None:
    return None


@dataclass(frozen=True)
class ExecutorContext:
    """What the engine hands an executor besides the tasks themselves.

    ``on_started`` must be called exactly once per *execution attempt*, at
    the moment the attempt enters the executor's in-flight window (see the
    module docstring's ordering contract); the engine turns it into the
    ``task_started`` event.  ``on_task_failed`` is called once per failed
    attempt with the structured error payload, whether the task will be
    retried, and the deterministic backoff delay; the engine turns it into
    ``task_failed`` (+ ``task_retried``) events.  ``store_path`` is the
    content-addressed result store the workers persist into (and read cached
    scenario data from), or ``None``.  ``shm_manifest`` is the shared-memory
    scenario-array manifest published by the engine's
    :class:`~repro.sweep.shm.ScenarioArrayServer` (or ``None`` when the tier
    is off); it is a plain dict so it pickles to workers cheaply.
    ``retry_policy``/``task_timeout``/``faults`` configure the resilience
    layer (:mod:`repro.sweep.faults`) identically for every executor.
    """

    scenario_cache: bool = True
    store_path: Optional[str] = None
    on_started: Callable[..., None] = field(default=_noop_started)
    shm_manifest: Optional[Dict[str, Any]] = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    task_timeout: Optional[float] = None
    faults: Optional[FaultPlan] = None
    on_task_failed: Callable[..., None] = field(default=_noop_failed)
    #: Called by the distributed coordinator when it declares a worker dead
    #: and reclaims its expired lease: ``(task, attempt, worker_id,
    #: will_retry)``.  The engine turns it into a ``lease_reclaimed`` event;
    #: in-process executors never call it.
    on_lease_reclaimed: Callable[..., None] = field(default=_noop_reclaimed)


def execute_task(
    task: SweepTask,
    *,
    scenario_cache: bool = True,
    store: Optional[Any] = None,
    shm_manifest: Optional[Dict[str, Any]] = None,
    timeout: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    attempt: int = 1,
) -> Tuple[RunResult, float]:
    """Run one sweep task to completion; returns ``(result, seconds)``.

    This is the whole per-worker protocol: materialise the task's
    :class:`~repro.session.config.SessionConfig`, fetch (or build) the
    scenario data through the per-worker memo (backed by the store's
    scenario tier when one is given), assemble a
    :class:`~repro.session.simulation.Simulation`, hand it to the task's
    registered runner, and return the runner's JSON-exportable
    :class:`RunResult`.  The raw ``protocol_result`` is dropped — it is not
    part of the exportable surface and would dominate pickling cost.

    With ``scenario_cache=True`` (the default) tasks sharing a
    ``(scenario, ScenarioConfig)`` key reuse one built
    :class:`~repro.datasets.scenarios.ScenarioData` per process; runners
    registered as scenario-mutating get a private deep copy (copy-on-write),
    so results are byte-identical with and without the cache.

    When *store* (a :class:`~repro.sweep.store.ResultStore` or its root
    path) is given, the finished result is persisted under the task's
    content hash *before* returning — so a killed sweep keeps every task
    that completed, which is what makes resume work.

    The resilience knobs are opt-in: *timeout* arms a worker-side
    :func:`~repro.sweep.faults.task_timeout_guard` around the whole
    execution (scenario build included), and a matching *faults* rule for
    ``(task, attempt)`` fires at the top of the attempt — both raise into
    the caller, which owns retry/quarantine handling.
    """
    from repro.sweep.cache import (
        runner_mutates_scenario,
        scenario_cache_enabled,
        scenario_data_for,
    )
    from repro.sweep.runners import resolve_runner
    from repro.sweep.store import ResultStore, task_hash

    store_obj = ResultStore.from_any(store)
    runner = resolve_runner(task.runner)
    started = time.perf_counter()
    with task_timeout_guard(timeout):
        config = task.session_config()
        if faults:
            rule = faults.match(task_hash(task), task.index, attempt)
            if rule is not None:
                from repro.sweep.shm import scenario_shm_key

                trigger_fault(
                    rule,
                    scenario_key=scenario_shm_key(config),
                    shm_manifest=shm_manifest,
                )
        data = None
        if scenario_cache and scenario_cache_enabled():
            mutates = runner_mutates_scenario(runner)
            data = scenario_data_for(config, mutates=mutates, store=store_obj)
            if shm_manifest and not mutates:
                # Shared-memory tier: reuse the coordinator-published recall
                # arrays instead of rebuilding |P| x |P| products per process.
                # Best-effort — on any failure the ordinary build path applies
                # and the degraded key is recorded for the caller to report.
                from repro.sweep.shm import adopt_shared_matrix, scenario_shm_key

                adopt_shared_matrix(data.network, scenario_shm_key(config), shm_manifest)
        simulation = Simulation.from_config(config, data=data)
        result = runner(simulation, dict(task.options))
    result.protocol_result = None
    duration = time.perf_counter() - started
    if store_obj is not None:
        store_obj.put(task, result, duration)
    return result, duration


def _execute_payload(
    payload: Dict[str, object],
    scenario_cache: bool = True,
    store_path: Optional[str] = None,
    shm_manifest: Optional[Dict[str, Any]] = None,
) -> Tuple[RunResult, float]:
    """Process-pool entry point: rebuild the task from its dict form and run it.

    Kept for third-party executors built against the PR-6 protocol; the
    built-in pool executors now go through :func:`_execute_payload_envelope`
    so failures cross the process boundary as data instead of exceptions.
    """
    return execute_task(
        SweepTask.from_dict(payload),
        scenario_cache=scenario_cache,
        store=store_path,
        shm_manifest=shm_manifest,
    )


def _execute_payload_envelope(
    payload: Dict[str, object],
    scenario_cache: bool = True,
    store_path: Optional[str] = None,
    shm_manifest: Optional[Dict[str, Any]] = None,
    timeout: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    attempt: int = 1,
) -> Dict[str, Any]:
    """Fault-tolerant pool entry point: run one attempt, return an envelope.

    Exceptions (organic, injected, or timeout) are converted into an
    ``{"status": "error", ...}`` envelope worker-side so the coordinator can
    apply retry policy without the pool treating the task as poisonous; a
    success envelope additionally carries the shared-memory scenario keys
    the attempt degraded on.  Marks the process as a pool worker first, so
    an injected ``worker-kill`` rule takes the real ``os._exit`` path.
    """
    from repro.sweep.shm import consume_degraded_keys

    mark_worker_process()
    started = time.perf_counter()
    try:
        result, duration = execute_task(
            SweepTask.from_dict(payload),
            scenario_cache=scenario_cache,
            store=store_path,
            shm_manifest=shm_manifest,
            timeout=timeout,
            faults=faults,
            attempt=attempt,
        )
    except Exception as error:
        return {
            "status": "error",
            "duration": time.perf_counter() - started,
            "error": failure_payload(error, attempt),
        }
    return {
        "status": "ok",
        "result": result,
        "duration": duration,
        "degraded": consume_degraded_keys(),
    }


class SweepExecutor(ABC):
    """The executor protocol: schedule tasks, stream back outcomes.

    Implementations receive the *pending* task list (resume already removed
    tasks with stored results) and an :class:`ExecutorContext`, and yield one
    :class:`TaskOutcome` per task in any order.  They must honour the event
    ordering contract documented in the module docstring, run every task
    through :func:`execute_task` (or :func:`_execute_payload` across a
    process boundary) so durations and store persistence behave identically
    everywhere, and never let scheduling feed back into task inputs.
    """

    #: Registered name, for display and the ``SweepResult.executor`` field.
    name: str = "?"

    @abstractmethod
    def run(
        self, tasks: Iterable[SweepTask], context: ExecutorContext
    ) -> Iterator[TaskOutcome]:
        """Execute *tasks*, yielding a :class:`TaskOutcome` per task."""

    @property
    def workers(self) -> int:
        """Informational worker count (results never depend on it)."""
        return 1

    def describe(self) -> str:
        """A short human-readable identifier for logs and JSONL headers."""
        return self.name


@register_executor("serial", aliases=("inline",))
class SerialExecutor(SweepExecutor):
    """Run every task inline in the coordinating process, in task order.

    The deterministic reference path: in-flight window of 1, so
    ``task_started`` / ``task_finished`` strictly interleave.
    """

    name = "serial"

    def run(
        self, tasks: Iterable[SweepTask], context: ExecutorContext
    ) -> Iterator[TaskOutcome]:
        from repro.sweep.shm import consume_degraded_keys
        from repro.sweep.store import task_hash

        policy = context.retry_policy
        for task in tasks:
            attempt = 1
            failures = 0
            cached_hash: Optional[str] = None
            while True:
                context.on_started(task, attempt)
                started = time.perf_counter()
                try:
                    result, duration = execute_task(
                        task,
                        scenario_cache=context.scenario_cache,
                        store=context.store_path,
                        shm_manifest=context.shm_manifest,
                        timeout=context.task_timeout,
                        faults=context.faults,
                        attempt=attempt,
                    )
                except Exception as error:
                    if is_fatal_error(error):
                        # Deterministic misconfiguration: abort the sweep
                        # instead of burning retries or quarantining.
                        raise
                    payload = failure_payload(error, attempt)
                    failures += 1
                    if cached_hash is None:
                        cached_hash = task_hash(task)
                    will_retry = failures < policy.max_attempts
                    delay = policy.delay(cached_hash, attempt) if will_retry else 0.0
                    context.on_task_failed(task, attempt, payload, will_retry, delay)
                    if will_retry:
                        if delay > 0:
                            time.sleep(delay)
                        attempt += 1
                        continue
                    yield TaskOutcome(
                        task,
                        None,
                        time.perf_counter() - started,
                        failure=failure_from_payload(task, cached_hash, payload),
                        attempt=attempt,
                    )
                    break
                yield TaskOutcome(
                    task,
                    result,
                    duration,
                    degraded=tuple(consume_degraded_keys()),
                    attempt=attempt,
                )
                break


def _effective_workers(max_workers: Optional[int], total: int) -> int:
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(f"max_workers must be at least 1, got {max_workers}")
    limit = max_workers if max_workers is not None else (os.cpu_count() or 1)
    return max(1, min(limit, total))


class _Attempt:
    """Mutable per-task retry state inside a pool run."""

    __slots__ = ("task", "attempt", "failures", "crashes", "delay", "task_hash")

    def __init__(self, task: SweepTask) -> None:
        self.task = task
        self.attempt = 1
        self.failures = 0
        self.crashes = 0
        self.delay = 0.0
        self.task_hash: Optional[str] = None

    def hash(self) -> str:
        if self.task_hash is None:
            from repro.sweep.store import task_hash

            self.task_hash = task_hash(self.task)
        return self.task_hash


class _PoolRun:
    """The shared fault-tolerant process-pool driver.

    Both pool executors reduce to this loop; they differ only in the
    in-flight ``window`` (``None`` = unbounded, the process-pool burst;
    an integer = chunked streaming).  The driver owns retry/quarantine
    bookkeeping and crash recovery:

    * a worker-side failure arrives as an error envelope — while the retry
      policy allows, the attempt is re-enqueued (ahead of fresh tasks, after
      its deterministic backoff) and otherwise quarantined;
    * worker death breaks the whole pool (``concurrent.futures`` semantics:
      every in-flight future fails with ``BrokenProcessPool`` at once) — the
      driver salvages envelopes that completed before the break, respawns
      the pool, and requeues exactly the in-flight attempts, each charged
      one crash against ``RetryPolicy.crash_requeues``.

    All pending futures always belong to the current pool: a break fails
    them all simultaneously and recovery respawns before anything new is
    submitted, which is what keeps the event-ordering contract intact
    across crashes.
    """

    def __init__(
        self,
        tasks: Iterable[SweepTask],
        context: ExecutorContext,
        workers: int,
        window: Optional[int],
    ) -> None:
        self.iterator = iter(tasks)
        self.context = context
        self.policy = context.retry_policy
        self.workers = workers
        self.window = window
        self.pool: Optional[ProcessPoolExecutor] = None
        self.pending: Dict[Any, _Attempt] = {}
        self.ready: "deque[_Attempt]" = deque()
        self.out: "deque[TaskOutcome]" = deque()

    def outcomes(self) -> Iterator[TaskOutcome]:
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            self._fill()
            while self.pending or self.ready or self.out:
                # Drain finished outcomes BEFORE topping the window up: the
                # coordinator emits task_finished as each outcome is yielded,
                # and rule 4 (start = admission to the in-flight window)
                # requires those finishes to precede the next starts.
                while self.out:
                    yield self.out.popleft()
                self._fill()
                if not self.pending:
                    continue
                done, _ = wait(self.pending, return_when=FIRST_COMPLETED)
                crashed: List[Tuple[_Attempt, BaseException]] = []
                for future in done:
                    state = self.pending.pop(future)
                    try:
                        envelope = future.result()
                    except BrokenExecutor as error:
                        crashed.append((state, error))
                    else:
                        self._handle_envelope(state, envelope)
                if crashed:
                    self._recover(crashed)
        finally:
            self.pool.shutdown(wait=True, cancel_futures=True)

    def _fill(self) -> None:
        """Top the in-flight window up: queued retries first, then fresh tasks."""
        while self.window is None or len(self.pending) < self.window:
            if self.ready:
                state = self.ready.popleft()
                if state.delay > 0:
                    time.sleep(state.delay)
                    state.delay = 0.0
            else:
                task = next(self.iterator, None)
                if task is None:
                    return
                state = _Attempt(task)
            self._submit(state)

    def _submit(self, state: _Attempt) -> None:
        self.context.on_started(state.task, state.attempt)
        try:
            future = self.pool.submit(
                _execute_payload_envelope,
                state.task.to_dict(),
                self.context.scenario_cache,
                self.context.store_path,
                self.context.shm_manifest,
                self.context.task_timeout,
                self.context.faults,
                state.attempt,
            )
        except BrokenExecutor:
            # The pool broke between the last wait and this submit.  The
            # submission never reached a worker, so this attempt is not
            # charged a crash: recover the in-flight futures, respawn, and
            # resubmit the same attempt (its task_started already fired,
            # matching contract rule 1 — the attempt still runs once).
            self._recover([])
            future = self.pool.submit(
                _execute_payload_envelope,
                state.task.to_dict(),
                self.context.scenario_cache,
                self.context.store_path,
                self.context.shm_manifest,
                self.context.task_timeout,
                self.context.faults,
                state.attempt,
            )
        self.pending[future] = state

    def _handle_envelope(self, state: _Attempt, envelope: Dict[str, Any]) -> None:
        if envelope["status"] == "ok":
            self.out.append(
                TaskOutcome(
                    state.task,
                    envelope["result"],
                    envelope["duration"],
                    degraded=tuple(envelope.get("degraded", ())),
                    attempt=state.attempt,
                )
            )
            return
        payload = envelope["error"]
        if payload.get("fatal"):
            raise fatal_error_from_payload(payload)
        state.failures += 1
        will_retry = state.failures < self.policy.max_attempts
        delay = self.policy.delay(state.hash(), state.attempt) if will_retry else 0.0
        self.context.on_task_failed(state.task, state.attempt, payload, will_retry, delay)
        if will_retry:
            state.attempt += 1
            state.delay = delay
            self.ready.append(state)
            return
        self.out.append(
            TaskOutcome(
                state.task,
                None,
                envelope["duration"],
                failure=failure_from_payload(state.task, state.hash(), payload),
                attempt=state.attempt,
            )
        )

    def _recover(self, crashed: List[Tuple[_Attempt, BaseException]]) -> None:
        """Salvage a broken pool: drain its futures, respawn, requeue crashes."""
        for future, state in list(self.pending.items()):
            del self.pending[future]
            try:
                envelope = future.result()
            except BrokenExecutor as error:
                crashed.append((state, error))
            else:
                # Completed before the break; its result (and store entry)
                # survives the crash.
                self._handle_envelope(state, envelope)
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        crashed.sort(key=lambda pair: (pair[0].task.index, pair[0].attempt))
        for state, error in crashed:
            payload = crash_payload(error, state.attempt)
            state.crashes += 1
            will_retry = state.crashes <= self.policy.crash_requeues
            self.context.on_task_failed(
                state.task, state.attempt, payload, will_retry, 0.0
            )
            if will_retry:
                state.attempt += 1
                state.delay = 0.0
                self.ready.append(state)
            else:
                self.out.append(
                    TaskOutcome(
                        state.task,
                        None,
                        0.0,
                        failure=failure_from_payload(state.task, state.hash(), payload),
                        attempt=state.attempt,
                    )
                )


@register_executor("process-pool", aliases=("pool",))
class ProcessPoolSweepExecutor(SweepExecutor):
    """Fan tasks out over a ``concurrent.futures`` process pool.

    Every task is submitted up front (``task_started`` bursts), outcomes
    stream back in completion order.  ``max_workers=None`` uses the CPU
    count; with one worker (or one task) it degrades to the serial path —
    same results, no pool overhead.
    """

    name = "process-pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be at least 1, got {max_workers}")
        self.max_workers = max_workers

    @property
    def workers(self) -> int:
        return self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)

    def describe(self) -> str:
        return f"{self.name}({self.workers})"

    def run(
        self, tasks: Iterable[SweepTask], context: ExecutorContext
    ) -> Iterator[TaskOutcome]:
        tasks = list(tasks)
        workers = _effective_workers(self.max_workers, len(tasks))
        if workers == 1 or len(tasks) <= 1:
            yield from SerialExecutor().run(tasks, context)
            return
        yield from _PoolRun(tasks, context, workers, window=None).outcomes()


@register_executor("chunked-streaming", aliases=("chunked",))
class ChunkedStreamingExecutor(SweepExecutor):
    """A process pool with a bounded in-flight window, for very large grids.

    At most ``window`` tasks (default: ``2 * max_workers``, never below the
    worker count) are submitted-but-unfinished at any moment; each completion
    refills the window from the task iterator.  Coordinator-side memory —
    futures, pickled task payloads — stays proportional to the window rather
    than the grid, which is what lets a million-task spec stream through a
    box that could never hold a million futures.
    """

    name = "chunked-streaming"

    def __init__(
        self, max_workers: Optional[int] = None, window: Optional[int] = None
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(f"max_workers must be at least 1, got {max_workers}")
        if window is not None and window < 1:
            raise ConfigurationError(f"window must be at least 1, got {window}")
        self.max_workers = max_workers
        self._window = window

    @property
    def workers(self) -> int:
        return self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)

    def window_size(self, workers: int) -> int:
        """The in-flight window for *workers* pool processes."""
        if self._window is not None:
            return max(self._window, workers)
        return 2 * workers

    def describe(self) -> str:
        return f"{self.name}({self.workers}, window={self.window_size(self.workers)})"

    def run(
        self, tasks: Iterable[SweepTask], context: ExecutorContext
    ) -> Iterator[TaskOutcome]:
        # Deliberately no list(tasks): the iterator is consumed lazily so a
        # huge grid is never fully materialised on the coordinator.  The
        # worker count falls back to the configured/CPU limit (the total is
        # unknown up front) and the pool drains naturally when fewer tasks
        # than workers exist.
        workers = _effective_workers(self.max_workers, self.workers)
        window = self.window_size(workers)
        yield from _PoolRun(iter(tasks), context, workers, window=window).outcomes()


def resolve_executor(
    executor: Optional[Any] = None, *, workers: Optional[int] = None
) -> SweepExecutor:
    """The :class:`SweepExecutor` for an ``executor=`` / ``workers=`` pair.

    *executor* may be an executor instance (returned as-is), a registered
    name (``"serial"``, ``"process-pool"``, ``"chunked-streaming"``) or a
    JSON-style spec ``{"name": ..., "options": {...}}``.  *workers* is the
    legacy knob: ``None``/``1`` resolve to the serial executor, ``N > 1`` to
    a process pool with ``N`` workers.  Giving both is ambiguous and raises.
    """
    if executor is not None and workers is not None:
        raise ConfigurationError(
            "executor= and workers= are mutually exclusive; "
            "pass the worker count inside the executor spec, e.g. "
            '{"name": "process-pool", "options": {"max_workers": N}}'
        )
    if executor is None:
        if workers is None or workers == 1:
            return SerialExecutor()
        if workers < 1:
            raise ConfigurationError(f"workers must be at least 1, got {workers}")
        return ProcessPoolSweepExecutor(max_workers=workers)
    if isinstance(executor, SweepExecutor):
        return executor
    if isinstance(executor, str):
        return executor_registry.create(executor)
    if isinstance(executor, Mapping):
        extra = sorted(set(executor) - {"name", "options"})
        if extra:
            raise ConfigurationError(
                f"unknown executor spec keys {extra}; valid keys: ['name', 'options']"
            )
        if "name" not in executor:
            raise ConfigurationError("an executor spec needs a 'name' key")
        options = dict(executor.get("options") or {})
        return executor_registry.create(executor["name"], **options)
    raise ConfigurationError(
        "expected an executor name, spec mapping or SweepExecutor instance, "
        f"got {type(executor).__name__}"
    )


def executor_from_any(
    executor: Optional[Any] = None, workers: Optional[int] = None
) -> SweepExecutor:
    """Like :func:`resolve_executor`, but *executor* wins when both are given.

    The experiment drivers keep their long-standing ``workers=N`` parameter
    as a convenience and additionally accept ``executor=``; this helper
    implements that precedence without tripping the mutual-exclusion check.
    """
    if executor is not None:
        return resolve_executor(executor)
    return resolve_executor(workers=workers)
