"""Declarative sweep specifications.

A :class:`SweepSpec` declares a grid over scenarios × initial configurations
× strategies × theta functions × dynamics × traffic workloads × seeds (plus
an explicit task list for non-grid shapes), and expands deterministically
into a flat, ordered list of
:class:`SweepTask`\\ s.  Every pluggable part is referenced *by registry
name*, so a spec — and every task derived from it — is a plain bag of
strings/numbers that round-trips through JSON and crosses process boundaries
without pickling any component objects.

Seed streams
------------

Replicated sweeps need per-task seeds that do not depend on how tasks are
scheduled over workers.  Two modes:

* ``seeds=(7, 11, ...)`` — explicit seeds, used verbatim;
* ``replications=N`` — ``N`` seeds derived from ``base_seed`` through
  ``numpy.random.SeedSequence(base_seed).spawn(N)``, one spawned child per
  replication index.

Either way the seed of a task is a pure function of the spec and the task's
position in the expansion, never of worker count or completion order — so a
sweep is byte-identical for any ``workers`` value, including 1.

Applying seed ``s`` to a task sets both the session's master seed
(``SessionConfig.seed``, which drives initial configurations and driver
RNG offsets) and the scenario build seed
(``scenario_overrides["seed"]``, which drives corpus/workload generation),
so replications genuinely resample the world.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.registry import (
    initializer_registry,
    router_registry,
    runner_registry,
    scenario_registry,
    strategy_registry,
    theta_registry,
    workload_registry,
)
from repro.session.config import SessionConfig

__all__ = ["SweepSpec", "SweepTask", "derive_seeds", "DEFAULT_RUNNER"]

#: Runner used when a spec/task does not name one (a plain discovery run).
DEFAULT_RUNNER = "discover"


def derive_seeds(base_seed: int, count: int) -> List[int]:
    """*count* independent integer seeds derived from *base_seed*.

    Uses ``numpy.random.SeedSequence.spawn`` so the streams are
    statistically independent; the i-th seed depends only on
    ``(base_seed, i)``.
    """
    if count < 0:
        raise ConfigurationError(f"seed count must be non-negative, got {count}")
    children = np.random.SeedSequence(base_seed).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint32)[0]) for child in children]


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: a session config plus a named runner.

    ``config`` is a :class:`~repro.session.config.SessionConfig` mapping
    (already carrying the task's seed), ``runner`` names a callable in
    :data:`repro.registry.runner_registry` and ``options`` are its plain-dict
    arguments.  Everything is JSON-safe by construction.
    """

    index: int
    config: Dict[str, Any]
    runner: str = DEFAULT_RUNNER
    options: Dict[str, Any] = field(default_factory=dict)
    #: The seed the expansion applied, or ``None`` if the config's own seed rules.
    seed: Optional[int] = None

    def session_config(self) -> SessionConfig:
        """The materialised :class:`SessionConfig` for this task."""
        return SessionConfig.from_dict(self.config)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable mapping that round-trips through :meth:`from_dict`."""
        return {
            "index": self.index,
            "config": dict(self.config),
            "runner": self.runner,
            "options": dict(self.options),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "SweepTask":
        """Rebuild a task from its :meth:`to_dict` form."""
        return cls(
            index=int(mapping["index"]),
            config=dict(mapping.get("config", {})),
            runner=str(mapping.get("runner", DEFAULT_RUNNER)),
            options=dict(mapping.get("options", {})),
            seed=mapping.get("seed"),
        )

    def canonical_key(self) -> Dict[str, Any]:
        """The task's identity material for content addressing.

        A pure function of what the task *runs* — the session config with
        every component reference resolved to its registry-canonical name,
        the fully resolved :class:`~repro.datasets.scenarios.ScenarioConfig`
        (scale preset + overrides + seed material), the canonical runner
        name, the runner options and the applied seed — and never of the
        task's position in a grid (``index``) or of any executor/placement
        detail.  Two tasks with equal canonical keys perform identical work,
        even across differently shaped specs, which is exactly the sharing
        :func:`repro.sweep.store.task_hash` builds on.
        """
        # Imported lazily: repro.sweep.runners registers the built-in runners
        # and importing it at module scope would be cyclic.
        from repro.sweep.runners import resolve_runner

        resolve_runner(self.runner)  # ensure runners are registered; fail fast
        config = self.session_config()
        config_dict = config.to_dict()
        config_dict["scenario"] = scenario_registry.canonical_name(config.scenario)
        config_dict["strategy"] = strategy_registry.canonical_name(config.strategy)
        config_dict["initial"] = initializer_registry.canonical_name(config.initial)
        if config.theta is not None:
            config_dict["theta"] = theta_registry.canonical_name(config.theta)
        if config.router is not None:
            config_dict["router"] = router_registry.canonical_name(config.router)
        return {
            "config": config_dict,
            "scenario_config": asdict(config.experiment_config().scenario),
            "runner": runner_registry.canonical_name(self.runner),
            "options": dict(self.options),
            "seed": self.seed,
        }

    def label(self) -> str:
        """A short human-readable identifier for progress displays."""
        parts = [
            str(self.config.get("scenario", "?")),
            str(self.config.get("initial", "?")),
            str(self.config.get("strategy", "?")),
        ]
        if self.runner != DEFAULT_RUNNER:
            parts.append(self.runner)
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return "/".join(parts)


def _as_tuple(value: Optional[Sequence[Any]]) -> Tuple[Any, ...]:
    if value is None:
        return ()
    if isinstance(value, (str, bytes)):
        raise ConfigurationError(
            f"expected a sequence of names, got the bare string {value!r}"
        )
    return tuple(value)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: grid axes × seeds, plus explicit tasks.

    Grid axes left empty fall back to the :class:`SessionConfig` default for
    that field (one grid point).  ``tasks`` entries are either a bare
    :class:`SessionConfig` mapping or ``{"config": ..., "runner": ...,
    "options": ...}``; they are appended after the grid, in order.
    """

    #: Registered scenario names; empty = the SessionConfig default scenario.
    scenarios: Tuple[str, ...] = ()
    #: Registered initial-configuration kinds; empty = the default.
    initials: Tuple[str, ...] = ()
    #: Registered strategy names; empty = the default.
    strategies: Tuple[str, ...] = ()
    #: Registered theta function names; empty = the scale preset's theta.
    thetas: Tuple[str, ...] = ()
    #: Dynamics axis: drift schedule specs (mappings naming registered drift
    #: models, see :class:`~repro.dynamics.schedule.DynamicsSchedule`), one
    #: grid point each; empty = the SessionConfig default (no drift).  This
    #: is how the paper's Section 4.2 drift grids sweep: e.g. one
    #: ``workload-full`` spec per ``peer_fraction`` value x the seed stream.
    dynamics: Tuple[Any, ...] = ()
    #: Workload axis for traffic runs: registered arrival-generator names
    #: (``"zipf"``) or mappings merged into the task's ``traffic`` config
    #: (``{"workload": "flash-crowd", "workload_options": {...}}``), one grid
    #: point each; empty = the config's ``traffic`` field (or no traffic).
    #: Only meaningful with the ``traffic`` runner, which reads the field.
    workloads: Tuple[Any, ...] = ()
    #: Scale preset applied to every grid task (``quick``/``benchmark``/``paper``).
    scale: Optional[str] = None
    #: Extra :class:`SessionConfig` fields applied to every grid task.
    overrides: Dict[str, Any] = field(default_factory=dict)
    #: Explicit seeds; mutually exclusive with ``replications > 1``.
    seeds: Optional[Tuple[int, ...]] = None
    #: Number of derived-seed replications (used when ``seeds`` is unset).
    replications: int = 1
    #: Master entropy for derived seed streams.
    base_seed: int = 7
    #: Runner applied to every grid task.
    runner: str = DEFAULT_RUNNER
    #: Options passed to the grid tasks' runner.
    runner_options: Dict[str, Any] = field(default_factory=dict)
    #: Explicit (non-grid) tasks, appended after the grid.
    tasks: Tuple[Any, ...] = ()
    #: Retries per failed task before quarantine (0 = a single attempt).
    #: Execution policy, not task identity: content hashes ignore it.
    retries: int = 0
    #: Per-task wall-clock budget in seconds, enforced worker-side
    #: (``None`` = unlimited).  Execution policy, like ``retries``.
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", _as_tuple(self.scenarios))
        object.__setattr__(self, "initials", _as_tuple(self.initials))
        object.__setattr__(self, "strategies", _as_tuple(self.strategies))
        object.__setattr__(self, "thetas", _as_tuple(self.thetas))
        object.__setattr__(self, "dynamics", _as_tuple(self.dynamics))
        object.__setattr__(self, "workloads", _as_tuple(self.workloads))
        if self.seeds is not None:
            object.__setattr__(self, "seeds", tuple(int(seed) for seed in self.seeds))
        object.__setattr__(self, "tasks", tuple(self.tasks))
        if self.replications < 1:
            raise ConfigurationError(
                f"replications must be at least 1, got {self.replications}"
            )
        if self.seeds is not None and self.replications != 1:
            raise ConfigurationError(
                "explicit seeds and replications are mutually exclusive; "
                "give one or the other"
            )
        if self.retries < 0:
            raise ConfigurationError(f"retries must be non-negative, got {self.retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive (or None), got {self.task_timeout}"
            )

    # -- construction / serialisation ---------------------------------------------

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "SweepSpec":
        """Build a spec from a plain mapping (JSON/CLI use).

        Unknown keys raise :class:`~repro.errors.ConfigurationError` listing
        the valid field names.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown sweep spec keys {unknown}; valid keys: {sorted(known)}"
            )
        values = dict(mapping)
        if "seeds" in values and values["seeds"] is not None:
            values["seeds"] = tuple(int(seed) for seed in values["seeds"])
        for axis in (
            "scenarios",
            "initials",
            "strategies",
            "thetas",
            "dynamics",
            "workloads",
            "tasks",
        ):
            if axis in values and values[axis] is not None:
                values[axis] = tuple(values[axis])
        return cls(**values)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable mapping that round-trips through :meth:`from_dict`."""
        return {
            "scenarios": list(self.scenarios),
            "initials": list(self.initials),
            "strategies": list(self.strategies),
            "thetas": list(self.thetas),
            "dynamics": [dict(spec) for spec in self.dynamics],
            "workloads": [
                dict(entry) if isinstance(entry, Mapping) else entry
                for entry in self.workloads
            ],
            "scale": self.scale,
            "overrides": dict(self.overrides),
            "seeds": list(self.seeds) if self.seeds is not None else None,
            "replications": self.replications,
            "base_seed": self.base_seed,
            "runner": self.runner,
            "runner_options": dict(self.runner_options),
            "tasks": [dict(task) for task in self.tasks],
            "retries": self.retries,
            "task_timeout": self.task_timeout,
        }

    def with_options(self, **overrides: Any) -> "SweepSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **overrides)

    # -- expansion -----------------------------------------------------------------

    def seed_stream(self) -> List[Optional[int]]:
        """The per-replication seeds this spec sweeps over.

        ``[None]`` when neither explicit seeds nor replications were asked
        for — the task configs' own seeds then apply unchanged.
        """
        if self.seeds is not None:
            return list(self.seeds)
        if self.replications > 1:
            return list(derive_seeds(self.base_seed, self.replications))
        return [None]

    def _base_config(self) -> Dict[str, Any]:
        """Spec-wide fields (``overrides`` + ``scale``) every task starts from."""
        config: Dict[str, Any] = dict(self.overrides)
        if self.scale is not None:
            config["scale"] = self.scale
        return config

    def _grid_configs(self) -> List[Dict[str, Any]]:
        # Axes left empty pin the SessionConfig default explicitly (unless
        # `overrides` already sets the field) so task labels, JSONL records
        # and summary group keys name the actual component that ran.  The
        # theta axis stays unset: its default depends on the scale preset.
        defaults = SessionConfig()
        axes: List[Tuple[str, Tuple[Any, ...], Optional[str]]] = [
            ("scenario", self.scenarios or (None,), defaults.scenario),
            ("initial", self.initials or (None,), defaults.initial),
            ("strategy", self.strategies or (None,), defaults.strategy),
            ("theta", self.thetas or (None,), None),
            ("dynamics", self.dynamics or (None,), None),
            ("traffic", self.workloads or (None,), None),
        ]
        configs: List[Dict[str, Any]] = []
        for combo in itertools.product(*(values for _field, values, _default in axes)):
            config = self._base_config()
            for (field_name, _values, default), value in zip(axes, combo):
                if field_name == "traffic":
                    if value is not None:
                        # A bare name selects the generator; a mapping merges
                        # over any spec-wide traffic settings from `overrides`.
                        entry = (
                            dict(value) if isinstance(value, Mapping) else {"workload": value}
                        )
                        config["traffic"] = {**dict(config.get("traffic") or {}), **entry}
                elif value is not None:
                    config[field_name] = value
                elif default is not None:
                    config.setdefault(field_name, default)
            configs.append(config)
        return configs

    def _explicit_entries(self) -> List[Tuple[Dict[str, Any], str, Dict[str, Any]]]:
        entries = []
        for position, task in enumerate(self.tasks):
            if not isinstance(task, Mapping):
                raise ConfigurationError(
                    f"tasks[{position}] must be a mapping, got {type(task).__name__}"
                )
            if "config" in task:
                extra = sorted(set(task) - {"config", "runner", "options"})
                if extra:
                    raise ConfigurationError(
                        f"tasks[{position}] has unknown keys {extra}; "
                        "valid keys: ['config', 'options', 'runner']"
                    )
                task_config = dict(task["config"])
                runner = str(task.get("runner", self.runner))
                options = dict(task.get("options", self.runner_options))
            else:
                task_config = dict(task)
                runner = self.runner
                options = dict(self.runner_options)
            # Spec-wide scale/overrides apply to explicit tasks too (the
            # task's own fields win), so {"scale": "quick", "tasks": [...]}
            # doesn't silently run the tasks at paper scale.
            config = {**self._base_config(), **task_config}
            entries.append((config, runner, options))
        return entries

    @staticmethod
    def _apply_seed(config: Dict[str, Any], seed: Optional[int]) -> Dict[str, Any]:
        if seed is None:
            return dict(config)
        seeded = dict(config)
        seeded["seed"] = seed
        scenario_overrides = dict(seeded.get("scenario_overrides") or {})
        scenario_overrides.setdefault("seed", seed)
        seeded["scenario_overrides"] = scenario_overrides
        return seeded

    def expand(self) -> List[SweepTask]:
        """The flat, ordered task list this spec describes.

        Order: every base task (grid in scenario → initial → strategy → theta
        nesting, then explicit tasks) is repeated for each seed of the seed
        stream, seeds innermost — so replications of the same configuration
        are adjacent and the order is independent of worker count.
        """
        base: List[Tuple[Dict[str, Any], str, Dict[str, Any]]] = []
        if not self.tasks or self._grid_requested():
            for config in self._grid_configs():
                base.append((config, self.runner, dict(self.runner_options)))
        base.extend(self._explicit_entries())
        expanded: List[SweepTask] = []
        for config, runner, options in base:
            for seed in self.seed_stream():
                expanded.append(
                    SweepTask(
                        index=len(expanded),
                        config=self._apply_seed(config, seed),
                        runner=runner,
                        options=dict(options),
                        seed=seed,
                    )
                )
        return expanded

    def _grid_requested(self) -> bool:
        return bool(
            self.scenarios
            or self.initials
            or self.strategies
            or self.thetas
            or self.dynamics
            or self.workloads
        )

    # -- validation ----------------------------------------------------------------

    def validate(self) -> List[SweepTask]:
        """Expand and validate every task, failing fast on unknown names.

        Unknown component names raise
        :class:`~repro.errors.UnknownComponentError` with the registry's
        listing of what *is* registered; malformed configs raise
        :class:`~repro.errors.ConfigurationError`.  Returns the expanded
        task list so callers validate and expand in one pass.
        """
        # Imported here: repro.sweep.runners registers the built-in runners
        # and importing it at module scope would be cyclic.
        from repro.dynamics.schedule import DynamicsSchedule
        from repro.sweep.runners import resolve_runner

        expanded = self.expand()
        for task in expanded:
            config = task.session_config()
            scenario_registry.canonical_name(config.scenario)
            strategy_registry.canonical_name(config.strategy)
            initializer_registry.canonical_name(config.initial)
            if config.theta is not None:
                theta_registry.canonical_name(config.theta)
            if config.router is not None:
                router_registry.canonical_name(config.router)
            if config.scale is not None:
                ExperimentConfig.from_scale(config.scale)
            if config.dynamics is not None:
                DynamicsSchedule.from_dict(config.dynamics).validate()
            if config.traffic is not None and config.traffic.get("workload") is not None:
                import repro.traffic  # noqa: F401  (registers built-in workloads)

                workload_registry.canonical_name(config.traffic["workload"])
            if "dynamics" in task.options and task.options["dynamics"] is not None:
                DynamicsSchedule.from_dict(task.options["dynamics"]).validate()
            resolve_runner(task.runner)
        return expanded
