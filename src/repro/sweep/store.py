"""On-disk content-addressed store for sweep results and scenario data.

Every :class:`~repro.sweep.spec.SweepTask` has a deterministic identity: the
sha256 of its canonical JSON (:meth:`SweepTask.canonical_key` — resolved
session config, resolved :class:`~repro.datasets.scenarios.ScenarioConfig`,
canonical runner name, options and seed material).  :class:`ResultStore`
keys everything by that hash:

* ``<root>/tasks/<hh>/<hash>.json`` — one finished task each: the canonical
  key, the task's dict form, the :class:`~repro.session.result.RunResult`
  dict and the worker-side duration.  Written atomically (temp file +
  ``os.replace``) by whichever worker finishes the task, so concurrent
  workers, CI shards and repeated runs can all share one store directory —
  equal hashes mean equal work, so last-writer-wins is harmless.
* ``<root>/scenarios/<hh>/<hash>.pkl`` — built
  :class:`~repro.datasets.scenarios.ScenarioData`, keyed by the sha256 of
  ``(scenario name, resolved ScenarioConfig)``.  The per-worker in-memory
  scenario memo (:mod:`repro.sweep.cache`) consults this tier on a miss, so
  scenario construction survives worker restarts, cold starts and crosses
  CI runs.

* ``<root>/quarantine/<hh>/<hash>.json`` — tasks the fault-tolerance layer
  (:mod:`repro.sweep.faults`) gave up on: the terminal
  :class:`~repro.sweep.faults.TaskFailure` payload under the task's
  canonical hash.  A later successful :meth:`ResultStore.put` for the same
  hash clears the quarantine record, so resume naturally retries
  quarantined tasks.

The two-level ``<hh>/`` fan-out (first two hex digits) keeps directories
small on million-task grids.  Corrupt or unreadable entries are treated as
missing — resume then simply re-runs the task — never as errors; they are
logged (``repro.sweep.store``) and :meth:`ResultStore.verify` scans for and
optionally purges them, emitting ``store_corrupt`` events.

This is what makes **sweep resume** work: :func:`~repro.sweep.engine.run_sweep`
with a store skips every task whose hash already has a stored result,
loading it instead, so an interrupted (or deliberately sharded) grid
finishes by re-running only what is missing, with results byte-identical to
one uninterrupted run.
"""

from __future__ import annotations

import copy
import hashlib
import json
import logging
import os
import pickle
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.session.result import RunResult
from repro.sweep.faults import TaskFailure
from repro.sweep.spec import SweepTask

__all__ = [
    "ResultStore",
    "StoredResult",
    "StoreVerification",
    "PruneReport",
    "task_hash",
    "canonical_json",
]

logger = logging.getLogger("repro.sweep.store")


def canonical_json(value: Any) -> str:
    """The canonical JSON rendering hashes are computed over.

    Key-sorted, separator-minimal and ASCII-only, so the byte stream — and
    therefore every hash — is identical across processes, platforms and
    Python versions.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def _sha256(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def task_hash(task: SweepTask) -> str:
    """The sha256 content hash of *task*'s canonical key (hex, 64 chars)."""
    return _sha256(canonical_json(task.canonical_key()))


def scenario_hash(scenario: str, scenario_config: Any) -> str:
    """The sha256 content hash of a ``(scenario name, ScenarioConfig)`` pair."""
    key = {"scenario": scenario, "config": asdict(scenario_config)}
    return _sha256(canonical_json(key))


@dataclass(frozen=True)
class StoredResult:
    """One task's stored outcome, as loaded back from the store."""

    task_hash: str
    task: Dict[str, Any]
    result: RunResult
    #: Worker-side wall-clock seconds of the run that produced the result.
    duration: float


@dataclass
class StoreVerification:
    """What :meth:`ResultStore.verify` found in one scan."""

    #: Task entries examined.
    checked: int = 0
    #: ``(task hash, reason)`` for every corrupt/unreadable entry.
    corrupt: List[Tuple[str, str]] = field(default_factory=list)
    #: Corrupt entries removed (only with ``purge=True``).
    purged: int = 0

    @property
    def ok(self) -> bool:
        """Whether the scan found no corrupt entries."""
        return not self.corrupt


@dataclass
class PruneReport:
    """What :meth:`ResultStore.prune` removed in one pass."""

    #: Scenario pickles examined.
    scenarios_checked: int = 0
    #: Scenario pickles no stored task references (a rebuildable cache).
    scenarios_removed: int = 0
    #: Stale queue files removed: superseded pending entries, dead leases,
    #: processed failure records, leftover config/STOP/fatal markers.
    queue_files_removed: int = 0
    #: Worker liveness files whose heartbeat went stale.
    worker_files_removed: int = 0
    #: Half-written atomic-write temp files left by killed processes.
    temp_files_removed: int = 0

    @property
    def removed(self) -> int:
        """Total files removed."""
        return (
            self.scenarios_removed
            + self.queue_files_removed
            + self.worker_files_removed
            + self.temp_files_removed
        )


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write *payload* to *path* atomically (visible fully written or not at all)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode="wb", dir=path.parent, prefix=f".{path.name}.", delete=False
    )
    try:
        with handle:
            handle.write(payload)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


class ResultStore:
    """A content-addressed store rooted at one directory (created lazily)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @classmethod
    def from_any(cls, value: Optional[Any]) -> Optional["ResultStore"]:
        """Coerce *value* (None, path string/Path or ResultStore) to a store."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, (str, Path)):
            return cls(value)
        raise ConfigurationError(
            f"expected a store path or ResultStore, got {type(value).__name__}"
        )

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self.root)!r})"

    # -- paths ---------------------------------------------------------------------

    def task_path(self, hash_hex: str) -> Path:
        """Where the result for content hash *hash_hex* lives."""
        return self.root / "tasks" / hash_hex[:2] / f"{hash_hex}.json"

    def scenario_path(self, hash_hex: str) -> Path:
        """Where the scenario data for content hash *hash_hex* lives."""
        return self.root / "scenarios" / hash_hex[:2] / f"{hash_hex}.pkl"

    def failure_path(self, hash_hex: str) -> Path:
        """Where the quarantine record for content hash *hash_hex* lives."""
        return self.root / "quarantine" / hash_hex[:2] / f"{hash_hex}.json"

    # -- task results --------------------------------------------------------------

    def put(self, task: SweepTask, result: RunResult, duration: float) -> str:
        """Persist *task*'s finished *result*; returns the content hash."""
        hash_hex = task_hash(task)
        record = {
            "kind": "sweep-task-result",
            "hash": hash_hex,
            "key": task.canonical_key(),
            "task": task.to_dict(),
            "result": result.to_dict(),
            "duration": duration,
        }
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        _atomic_write_bytes(self.task_path(hash_hex), payload)
        # A success supersedes any earlier quarantine of the same work.
        self.clear_failure(hash_hex)
        return hash_hex

    def get(self, task_or_hash: Union[SweepTask, str]) -> Optional[StoredResult]:
        """The stored outcome for a task (or bare content hash), or ``None``.

        Unreadable or corrupt entries count as missing: resume re-runs the
        task rather than failing the sweep on a half-written file.
        """
        hash_hex = (
            task_hash(task_or_hash)
            if isinstance(task_or_hash, SweepTask)
            else str(task_or_hash)
        )
        path = self.task_path(hash_hex)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            result = RunResult.from_dict(record["result"])
            return StoredResult(
                task_hash=hash_hex,
                task=dict(record.get("task", {})),
                result=result,
                duration=float(record.get("duration", 0.0)),
            )
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError, ConfigurationError) as error:
            # Present but unreadable: the task will re-run, but leave a trail
            # (and let `verify()` report it) instead of hiding the damage.
            logger.warning(
                "treating corrupt store entry %s as missing (%s: %s)",
                path,
                type(error).__name__,
                error,
            )
            return None

    def __contains__(self, task_or_hash: object) -> bool:
        if isinstance(task_or_hash, SweepTask):
            return self.task_path(task_hash(task_or_hash)).exists()
        return self.task_path(str(task_or_hash)).exists()

    def task_hashes(self) -> Iterator[str]:
        """Every stored task hash (no particular order)."""
        tasks_root = self.root / "tasks"
        if not tasks_root.is_dir():
            return
        for path in sorted(tasks_root.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.task_hashes())

    # -- quarantine ----------------------------------------------------------------

    def put_failure(self, task: SweepTask, failure: "TaskFailure") -> str:
        """Record *task*'s terminal *failure* under its content hash."""
        hash_hex = failure.task_hash or task_hash(task)
        record = {
            "kind": "sweep-task-failure",
            "hash": hash_hex,
            "task": task.to_dict(),
            "failure": failure.to_dict(),
        }
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        _atomic_write_bytes(self.failure_path(hash_hex), payload)
        return hash_hex

    def get_failure(self, task_or_hash: Union[SweepTask, str]) -> Optional[TaskFailure]:
        """The quarantine record for a task (or bare hash), or ``None``."""
        hash_hex = (
            task_hash(task_or_hash)
            if isinstance(task_or_hash, SweepTask)
            else str(task_or_hash)
        )
        try:
            with open(self.failure_path(hash_hex), "r", encoding="utf-8") as handle:
                record = json.load(handle)
            return TaskFailure.from_dict(record["failure"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def clear_failure(self, task_or_hash: Union[SweepTask, str]) -> None:
        """Drop the quarantine record for a task (or bare hash), if any."""
        hash_hex = (
            task_hash(task_or_hash)
            if isinstance(task_or_hash, SweepTask)
            else str(task_or_hash)
        )
        try:
            os.unlink(self.failure_path(hash_hex))
        except OSError:
            pass

    def failure_hashes(self) -> Iterator[str]:
        """Every quarantined task hash (no particular order)."""
        quarantine_root = self.root / "quarantine"
        if not quarantine_root.is_dir():
            return
        for path in sorted(quarantine_root.glob("*/*.json")):
            yield path.stem

    # -- verification --------------------------------------------------------------

    def verify(self, *, purge: bool = False, hooks: Optional[Any] = None) -> StoreVerification:
        """Scan every task entry for corruption; optionally purge the damage.

        An entry is corrupt when its JSON is unreadable, its recorded hash
        disagrees with its filename, or its result payload does not rebuild
        into a :class:`~repro.session.result.RunResult`.  Each corrupt entry
        is logged, reported in the returned :class:`StoreVerification` and —
        when *hooks* (an :class:`~repro.events.EventHooks`) is given —
        emitted as a ``store_corrupt`` event.  With ``purge=True`` corrupt
        files are deleted, so the next resume simply re-runs those tasks.
        """
        from repro.events import STORE_CORRUPT, StoreCorruptEvent

        report = StoreVerification()
        tasks_root = self.root / "tasks"
        if not tasks_root.is_dir():
            return report
        for path in sorted(tasks_root.glob("*/*.json")):
            report.checked += 1
            reason = self._entry_problem(path)
            if reason is None:
                continue
            logger.warning("corrupt store entry %s: %s", path, reason)
            purged = False
            if purge:
                try:
                    os.unlink(path)
                    purged = True
                    report.purged += 1
                except OSError as error:  # pragma: no cover - unlink race
                    logger.warning("could not purge %s: %s", path, error)
            report.corrupt.append((path.stem, reason))
            if hooks is not None:
                hooks.emit(
                    STORE_CORRUPT,
                    StoreCorruptEvent(
                        task_hash=path.stem,
                        path=str(path),
                        reason=reason,
                        purged=purged,
                    ),
                )
        return report

    @staticmethod
    def _entry_problem(path: Path) -> Optional[str]:
        """Why the task entry at *path* is corrupt, or ``None`` if it is sound."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError) as error:
            return f"unreadable JSON ({type(error).__name__}: {error})"
        if not isinstance(record, dict):
            return f"expected a JSON object, found {type(record).__name__}"
        recorded = record.get("hash")
        if recorded != path.stem:
            return f"recorded hash {recorded!r} does not match filename"
        try:
            RunResult.from_dict(record["result"])
        except (ValueError, KeyError, TypeError, ConfigurationError) as error:
            return f"result payload does not rebuild ({type(error).__name__}: {error})"
        return None

    # -- pruning -------------------------------------------------------------------

    def prune(self, *, stale_after: float = 1800.0, now: Optional[float] = None) -> PruneReport:
        """Garbage-collect derived state; never touches results or quarantine.

        Removes, in one pass:

        * **orphaned scenario pickles** — scenario-tier entries no stored
          task references.  The referenced set is computed by rebuilding
          each stored task's resolved config and hashing its scenario key
          exactly as the cache does; records that fail to rebuild simply
          contribute no references, which is safe because the scenario tier
          is a cache (a deleted pickle is rebuilt on demand);
        * **stale queue debris** left behind by killed workers and
          coordinators: pending entries whose task already has a stored
          result, leases and failure-journal records untouched for longer
          than *stale_after* seconds, and leftover ``config.json`` /
          ``STOP`` / ``fatal.json`` markers older than the same threshold;
        * **stale worker liveness files** (heartbeat older than
          *stale_after*);
        * **half-written atomic-write temp files** (``.`` -prefixed, older
          than *stale_after*) anywhere under the store root.

        Run it while no sweep is using the store: a live coordinator's
        queue state looks exactly like a dead one's until heartbeats are
        older than *stale_after*, which is why everything age-gated
        defaults to a generous 30 minutes.
        """
        from repro.registry import scenario_registry
        from repro.sweep.queue import TaskQueue  # local: queue.py imports this module

        clock = time.time() if now is None else now
        report = PruneReport()

        # Scenario pickles referenced by at least one stored task record.
        referenced = set()
        for hash_hex in self.task_hashes():
            try:
                with open(self.task_path(hash_hex), "r", encoding="utf-8") as handle:
                    record = json.load(handle)
                config = SweepTask.from_dict(record["task"]).session_config()
                name = scenario_registry.canonical_name(config.scenario)
                referenced.add(scenario_hash(name, config.experiment_config().scenario))
            except Exception:  # noqa: BLE001 - unresolvable record = no reference
                continue
        scenarios_root = self.root / "scenarios"
        if scenarios_root.is_dir():
            for path in sorted(scenarios_root.glob("*/*.pkl")):
                report.scenarios_checked += 1
                if path.stem in referenced:
                    continue
                if self._prune_unlink(path):
                    report.scenarios_removed += 1

        # Queue debris.  Entry/record filenames start with the task index;
        # the content hash is the second dot-separated component.
        queue = TaskQueue(self.root)
        for name in queue.pending_names():
            parts = name.split(".")
            if len(parts) >= 3 and parts[1] in self:
                if self._prune_unlink(queue.pending_dir / name):
                    report.queue_files_removed += 1
        for directory in (queue.leases_dir, queue.failed_dir):
            for path in sorted(directory.glob("*.json")) if directory.is_dir() else ():
                if self._prune_stale(path, clock, stale_after):
                    report.queue_files_removed += 1
        for path in (queue.config_path, queue.stop_path, queue.fatal_path):
            if self._prune_stale(path, clock, stale_after):
                report.queue_files_removed += 1

        # Worker liveness files whose heartbeat went stale.
        if queue.workers_dir.is_dir():
            for path in sorted(queue.workers_dir.glob("*.json")):
                if self._prune_stale(path, clock, stale_after):
                    report.worker_files_removed += 1

        # Aged atomic-write temp files anywhere under the store.
        if self.root.is_dir():
            for path in sorted(self.root.rglob(".*")):
                if path.is_file() and self._prune_stale(path, clock, stale_after):
                    report.temp_files_removed += 1
        return report

    @staticmethod
    def _prune_unlink(path: Path) -> bool:
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    @classmethod
    def _prune_stale(cls, path: Path, clock: float, stale_after: float) -> bool:
        """Unlink *path* if it has sat untouched for over *stale_after* seconds."""
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return False
        if clock - mtime <= stale_after:
            return False
        return cls._prune_unlink(path)

    # -- scenario data -------------------------------------------------------------

    def load_scenario(self, scenario: str, scenario_config: Any) -> Optional[Any]:
        """The stored :class:`ScenarioData` for the pair, or ``None``.

        Corrupt/unreadable pickles count as missing (the scenario is then
        rebuilt and re-stored).
        """
        path = self.scenario_path(scenario_hash(scenario, scenario_config))
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, AttributeError, EOFError, ImportError):
            return None

    def save_scenario(self, scenario: str, scenario_config: Any, data: Any) -> str:
        """Persist built scenario *data* for the pair; returns the content hash.

        The pickle is taken from a deep copy: the network's ``__deepcopy__``
        drops its derived-model caches, so what lands on disk is exactly the
        freshly built state — a loaded scenario behaves byte-identically to
        a rebuilt one.
        """
        hash_hex = scenario_hash(scenario, scenario_config)
        payload = pickle.dumps(copy.deepcopy(data), protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write_bytes(self.scenario_path(hash_hex), payload)
        return hash_hex
