"""Built-in sweep task runners and runner resolution.

A *runner* is the piece of a :class:`~repro.sweep.spec.SweepTask` that says
what to do with the assembled simulation.  Runners are plain callables
``(simulation, options) -> RunResult`` registered by name in
:data:`repro.registry.runner_registry`, so tasks reference them as strings
and serialize cleanly across process boundaries.

Three generic runners ship here:

* ``discover`` — run the reformulation protocol to quiescence
  (:meth:`Simulation.run`);
* ``maintain`` — run ``options["periods"]`` maintenance periods
  (:meth:`Simulation.run_maintenance`).  Exogenous change is declared
  through the dynamics layer: the task config's ``dynamics`` field (or
  ``options["dynamics"]``, which overrides it) is a
  :class:`~repro.dynamics.schedule.DynamicsSchedule` spec naming registered
  drift models — plain JSON, so drift studies sweep like everything else.
* ``traffic`` — optionally shape the clustering first (``options["after"]``
  = ``"discover"`` or ``"maintain"``), then serve a query workload through
  the event-driven traffic simulator (:meth:`Simulation.run_traffic`);
  latency/hops/bandwidth/recall percentiles become sweep metrics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigurationError, UnknownComponentError
from repro.registry import register_runner, runner_registry
from repro.session.result import RunResult
from repro.session.simulation import Simulation

__all__ = [
    "Runner",
    "resolve_runner",
    "run_discovery",
    "run_maintenance_periods",
    "run_traffic_workload",
]

#: The runner callable protocol: ``(simulation, options) -> RunResult``.
#: Anything satisfying this signature can be registered with
#: :func:`repro.registry.register_runner` and referenced by name from sweep
#: tasks; it is part of the public typing surface
#: (``from repro.sweep import Runner``).
Runner = Callable[[Simulation, Dict[str, Any]], RunResult]


def resolve_runner(name: str) -> Runner:
    """Look up a runner by registered name.

    Imports :mod:`repro.experiments` first so the experiment-specific
    runners are registered even in a freshly spawned worker process that
    never imported the drivers; unknown names raise the registry's
    :class:`~repro.errors.UnknownComponentError` listing what is available.
    """
    import repro.experiments  # noqa: F401  (registers experiment runners)

    return runner_registry.get(name)


@register_runner("discover", aliases=("discovery",), mutates_scenario=False)
def run_discovery(simulation: Simulation, options: Dict[str, Any]) -> RunResult:
    """Run the reformulation protocol to quiescence (a discovery run).

    Options: ``max_rounds`` (optional) overrides the config's round budget.

    Discovery only mutates the cluster configuration (built per task), never
    the scenario's network, so it shares cached scenario data.
    """
    max_rounds = options.get("max_rounds")
    return simulation.run(max_rounds=max_rounds)


@register_runner("maintain", aliases=("maintenance",), mutates_scenario=True)
def run_maintenance_periods(simulation: Simulation, options: Dict[str, Any]) -> RunResult:
    """Run ``options["periods"]`` periods of the periodic maintenance loop.

    Options: ``periods`` (default 1), ``max_rounds_per_period``, and
    ``dynamics`` — a drift schedule spec overriding the session config's
    ``dynamics`` field for this task.

    Registered as scenario-mutating: the scheduled drift mutates the
    network, so a sweep task gets a private copy of any cached scenario.
    """
    periods = int(options.get("periods", 1))
    max_rounds = options.get("max_rounds_per_period")
    dynamics = options.get("dynamics")
    return simulation.run_maintenance(
        periods, max_rounds_per_period=max_rounds, dynamics=dynamics
    )


@register_runner("traffic", mutates_scenario=True)
def run_traffic_workload(simulation: Simulation, options: Dict[str, Any]) -> RunResult:
    """Serve a query workload, optionally after shaping the clustering first.

    Options: ``after`` — ``"none"`` (default; traffic hits the initial
    configuration), ``"discover"`` (run the protocol to quiescence first) or
    ``"maintain"`` (run ``periods`` maintenance periods first) — plus
    ``periods`` / ``max_rounds_per_period`` / ``dynamics`` for the shaping
    phase and every :meth:`Simulation.run_traffic` setting (``workload``,
    ``num_events``, ``link``, ...), which override the task config's
    ``traffic`` mapping.

    The returned result is the traffic run's (latency/hops/bandwidth/recall
    scalars in ``extras``, directly usable as sweep metrics) with the shaping
    phase's cost fields grafted on, so one sweep row answers both "what did
    the clustering cost" and "what did it deliver".

    Registered as scenario-mutating: an ``after="maintain"`` phase may drift
    the network, so tasks get a private copy of any cached scenario.
    """
    options = dict(options)
    after = str(options.pop("after", "none"))
    periods = int(options.pop("periods", 1))
    max_rounds = options.pop("max_rounds_per_period", None)
    dynamics = options.pop("dynamics", None)
    prior: Optional[RunResult] = None
    if after != "none":
        # Resolve the phase through the runner registry so every registered
        # alias ("discovery", "maintenance", ...) works without hand-rolled
        # string lists here.
        try:
            phase = runner_registry.canonical_name(after)
        except UnknownComponentError:
            phase = None
        if phase == "discover":
            prior = simulation.run()
        elif phase == "maintain":
            prior = simulation.run_maintenance(
                periods, max_rounds_per_period=max_rounds, dynamics=dynamics
            )
        else:
            raise ConfigurationError(
                f"unknown traffic runner phase {after!r}; "
                "valid values: ['discover', 'maintain', 'none']"
            )
    result = simulation.run_traffic(**options)
    if prior is not None:
        result.merge_prior(prior)
    return result
