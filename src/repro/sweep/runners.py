"""Built-in sweep task runners and runner resolution.

A *runner* is the piece of a :class:`~repro.sweep.spec.SweepTask` that says
what to do with the assembled simulation.  Runners are plain callables
``(simulation, options) -> RunResult`` registered by name in
:data:`repro.registry.runner_registry`, so tasks reference them as strings
and serialize cleanly across process boundaries.

Two generic runners ship here:

* ``discover`` — run the reformulation protocol to quiescence
  (:meth:`Simulation.run`);
* ``maintain`` — run ``options["periods"]`` maintenance periods
  (:meth:`Simulation.run_maintenance`).  Exogenous change is declared
  through the dynamics layer: the task config's ``dynamics`` field (or
  ``options["dynamics"]``, which overrides it) is a
  :class:`~repro.dynamics.schedule.DynamicsSchedule` spec naming registered
  drift models — plain JSON, so drift studies sweep like everything else.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.registry import register_runner, runner_registry
from repro.session.result import RunResult
from repro.session.simulation import Simulation

__all__ = ["resolve_runner", "run_discovery", "run_maintenance_periods"]

#: The runner callable protocol.
Runner = Callable[[Simulation, Dict[str, Any]], RunResult]


def resolve_runner(name: str) -> Runner:
    """Look up a runner by registered name.

    Imports :mod:`repro.experiments` first so the experiment-specific
    runners are registered even in a freshly spawned worker process that
    never imported the drivers; unknown names raise the registry's
    :class:`~repro.errors.UnknownComponentError` listing what is available.
    """
    import repro.experiments  # noqa: F401  (registers experiment runners)

    return runner_registry.get(name)


@register_runner("discover", aliases=("discovery",), mutates_scenario=False)
def run_discovery(simulation: Simulation, options: Dict[str, Any]) -> RunResult:
    """Run the reformulation protocol to quiescence (a discovery run).

    Options: ``max_rounds`` (optional) overrides the config's round budget.

    Discovery only mutates the cluster configuration (built per task), never
    the scenario's network, so it shares cached scenario data.
    """
    max_rounds = options.get("max_rounds")
    return simulation.run(max_rounds=max_rounds)


@register_runner("maintain", aliases=("maintenance",), mutates_scenario=True)
def run_maintenance_periods(simulation: Simulation, options: Dict[str, Any]) -> RunResult:
    """Run ``options["periods"]`` periods of the periodic maintenance loop.

    Options: ``periods`` (default 1), ``max_rounds_per_period``, and
    ``dynamics`` — a drift schedule spec overriding the session config's
    ``dynamics`` field for this task.

    Registered as scenario-mutating: the scheduled drift mutates the
    network, so a sweep task gets a private copy of any cached scenario.
    """
    periods = int(options.get("periods", 1))
    max_rounds = options.get("max_rounds_per_period")
    dynamics = options.get("dynamics")
    return simulation.run_maintenance(
        periods, max_rounds_per_period=max_rounds, dynamics=dynamics
    )
