"""Fault tolerance and deterministic chaos injection for the sweep engine.

The paper's overlay clustering targets environments where peers fail and
leave mid-protocol; this module gives the experiment harness the same
resilience.  Three pieces:

* :class:`RetryPolicy` — how many execution attempts a task gets, how long
  to back off between them (exponential, with jitter drawn from the task's
  spawned :class:`numpy.random.SeedSequence` stream so a rerun backs off
  identically), and how many worker-crash requeues a task survives before it
  is quarantined.  Crash requeues are budgeted separately from failure
  retries: a task that merely happened to be in flight when a sibling worker
  died is not charged a retry for it.
* Worker-side **timeouts** — :func:`task_timeout_guard` arms a
  ``SIGALRM``-based interval timer around one task execution and raises
  :class:`~repro.errors.TaskTimeoutError` when it expires, so a hung task is
  converted into an ordinary retryable failure inside the worker instead of
  wedging the pool.  On platforms without ``SIGALRM`` (or off the main
  thread) the guard is a no-op and timeouts are not enforced.
* :class:`FaultPlan` — a declarative chaos harness.  A plan is a list of
  :class:`FaultRule`\\ s keyed by canonical task hash (or task index) plus
  attempt number, naming one of the registered fault models
  (:data:`FAULT_TASK_EXCEPTION`, :data:`FAULT_TASK_HANG`,
  :data:`FAULT_WORKER_KILL`, :data:`FAULT_SHM_UNLINK`).  Because the key is
  the task's *content* hash and the attempt counter — never scheduling state
  — an injected plan fires identically under every executor, which is what
  lets the chaos suite assert byte-identical results between a fault-free
  serial run and a pool run under kills, hangs and exceptions.  Plans travel
  to subprocess workers inside the executor context and can also be injected
  from the environment (:data:`ENV_FAULTS`) for CLI/CI runs.

Quarantine: a task that exhausts its retry budget is recorded as a
:class:`TaskFailure` — in ``SweepResult.failures`` and, when a store is
attached, under the task's canonical hash in the store's ``quarantine/``
tier — and the sweep completes with partial results instead of aborting.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback as traceback_module
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    ConfigurationError,
    InjectedFaultError,
    RegistryError,
    TaskTimeoutError,
)

__all__ = [
    "RetryPolicy",
    "FaultPlan",
    "FaultRule",
    "TaskFailure",
    "task_timeout_guard",
    "FAULT_TASK_EXCEPTION",
    "FAULT_TASK_HANG",
    "FAULT_WORKER_KILL",
    "FAULT_SHM_UNLINK",
    "FAULT_MODELS",
    "ENV_FAULTS",
]

#: Environment variable holding a JSON fault plan for subprocess workers
#: and CLI/CI runs (``run_sweep(faults=...)`` takes precedence).
ENV_FAULTS = "REPRO_SWEEP_FAULTS"

FAULT_TASK_EXCEPTION = "task-exception"
FAULT_TASK_HANG = "task-hang"
FAULT_WORKER_KILL = "worker-kill"
FAULT_SHM_UNLINK = "shm-unlink"

#: The registered fault models a :class:`FaultRule` may name.
FAULT_MODELS: Tuple[str, ...] = (
    FAULT_TASK_EXCEPTION,
    FAULT_TASK_HANG,
    FAULT_WORKER_KILL,
    FAULT_SHM_UNLINK,
)

#: Failure kinds recorded on :class:`TaskFailure` / failure payloads.
KIND_EXCEPTION = "exception"
KIND_TIMEOUT = "timeout"
KIND_CRASH = "crash"

_IN_WORKER = False


def mark_worker_process() -> None:
    """Mark this process as a pool worker (enables real ``worker-kill``)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    """Whether this process was marked as a sweep pool worker."""
    return _IN_WORKER


# -- retry policy ----------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How a failed or crashed task is re-attempted before quarantine.

    ``max_attempts`` counts *executions that ran and failed* (exceptions and
    timeouts): a task is quarantined after its ``max_attempts``-th failure.
    ``crash_requeues`` is the separate budget for worker-death requeues — a
    crash increments the task's attempt number (so fault plans keyed on
    attempts stay deterministic) but does not consume a retry.

    Backoff before retry *k* (1-based failed attempt) is
    ``backoff * backoff_multiplier**(k-1)`` capped at ``max_backoff``, with
    multiplicative jitter drawn from child ``k`` of the task's
    :class:`~numpy.random.SeedSequence` (seeded from the canonical task
    hash) — a pure function of ``(task, attempt)``, so reruns sleep the
    exact same amount.  The default ``backoff=0`` never sleeps.
    """

    #: Total failed executions a task may accumulate (1 = no retries).
    max_attempts: int = 1
    #: Base backoff seconds before the first retry (0 disables sleeping).
    backoff: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff: float = 60.0
    #: Jitter fraction: the delay is scaled by ``1 + jitter * U(-1, 1)``.
    jitter: float = 0.5
    #: Worker-crash requeues a task survives before quarantine.
    crash_requeues: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.backoff < 0:
            raise ConfigurationError(f"backoff must be non-negative, got {self.backoff}")
        if self.backoff_multiplier < 1:
            raise ConfigurationError(
                f"backoff_multiplier must be at least 1, got {self.backoff_multiplier}"
            )
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError(f"jitter must be within [0, 1], got {self.jitter}")
        if self.crash_requeues < 0:
            raise ConfigurationError(
                f"crash_requeues must be non-negative, got {self.crash_requeues}"
            )

    @property
    def retries(self) -> int:
        """Retries after the first attempt (``max_attempts - 1``)."""
        return self.max_attempts - 1

    @classmethod
    def from_any(cls, value: Optional[Any]) -> "RetryPolicy":
        """Coerce *value* to a policy.

        ``None`` is the no-retry default, an integer is a retry count
        (``2`` means up to 3 attempts), a mapping names policy fields
        (``retries`` is accepted as an alias for ``max_attempts - 1``) and a
        :class:`RetryPolicy` passes through.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, bool):
            raise ConfigurationError(f"expected a retry count or policy, got {value!r}")
        if isinstance(value, int):
            if value < 0:
                raise ConfigurationError(f"retries must be non-negative, got {value}")
            return cls(max_attempts=value + 1)
        if isinstance(value, Mapping):
            values = dict(value)
            if "retries" in values:
                if "max_attempts" in values:
                    raise ConfigurationError(
                        "a retry policy takes either 'retries' or 'max_attempts', not both"
                    )
                values["max_attempts"] = int(values.pop("retries")) + 1
            known = {name for name in cls.__dataclass_fields__}
            unknown = sorted(set(values) - known)
            if unknown:
                raise ConfigurationError(
                    f"unknown retry policy keys {unknown}; valid keys: {sorted(known)}"
                )
            return cls(**values)
        raise ConfigurationError(
            f"expected a retry count, mapping or RetryPolicy, got {type(value).__name__}"
        )

    def delay(self, task_hash: str, attempt: int) -> float:
        """Seconds to back off before re-running after failed *attempt*.

        Deterministic in ``(task_hash, attempt)``: the jitter factor comes
        from spawn child ``attempt`` of a :class:`~numpy.random.SeedSequence`
        seeded with the task's content hash.
        """
        if self.backoff <= 0:
            return 0.0
        base = min(self.backoff * self.backoff_multiplier ** (attempt - 1), self.max_backoff)
        if self.jitter <= 0:
            return base
        entropy = int(task_hash[:16], 16) if task_hash else 0
        stream = np.random.SeedSequence(entropy=entropy, spawn_key=(attempt,))
        factor = 1.0 + self.jitter * float(np.random.default_rng(stream).uniform(-1.0, 1.0))
        return max(0.0, base * factor)


# -- task failures ---------------------------------------------------------------


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its retry budget and was quarantined."""

    index: int
    task_hash: str
    #: Attempt number of the terminal failure (total attempts consumed).
    attempts: int
    error_type: str
    message: str
    #: ``"exception"``, ``"timeout"`` or ``"crash"``.
    kind: str = KIND_EXCEPTION
    #: Whether the failure came from an injected :class:`FaultPlan` rule.
    injected: bool = False
    traceback: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable mapping that round-trips through :meth:`from_dict`."""
        return {
            "index": self.index,
            "task_hash": self.task_hash,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "kind": self.kind,
            "injected": self.injected,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "TaskFailure":
        """Rebuild a failure from its :meth:`to_dict` form."""
        return cls(
            index=int(mapping["index"]),
            task_hash=str(mapping.get("task_hash", "")),
            attempts=int(mapping.get("attempts", 1)),
            error_type=str(mapping.get("error_type", "Exception")),
            message=str(mapping.get("message", "")),
            kind=str(mapping.get("kind", KIND_EXCEPTION)),
            injected=bool(mapping.get("injected", False)),
            traceback=str(mapping.get("traceback", "")),
        )


def is_fatal_error(error: BaseException) -> bool:
    """Whether *error* is a deterministic misconfiguration, not a task fault.

    Configuration and registry errors fail identically on every attempt and
    usually on every task — retrying or quarantining them hides a user error,
    so the engine re-raises them and aborts the sweep (the pre-fault-tolerance
    behaviour).  Injected faults are never fatal: chaos plans must exercise
    the retry path.
    """
    if isinstance(error, InjectedFaultError):
        return False
    return isinstance(error, (ConfigurationError, RegistryError))


def fatal_error_from_payload(payload: Mapping[str, Any]) -> ConfigurationError:
    """Rebuild a coordinator-side exception from a fatal wire payload.

    The concrete class does not cross the pool; re-raise everything as
    :class:`~repro.errors.ConfigurationError` (the common ancestor callers
    catch), keeping the original type name in the message.
    """
    error_type = str(payload.get("type", "ConfigurationError"))
    message = str(payload.get("message", ""))
    if error_type == "ConfigurationError":
        return ConfigurationError(message)
    return ConfigurationError(f"{error_type}: {message}")


def failure_payload(error: BaseException, attempt: int) -> Dict[str, Any]:
    """The wire form of one failed execution attempt (crosses the pool)."""
    return {
        "type": type(error).__name__,
        "message": str(error),
        "kind": KIND_TIMEOUT if isinstance(error, TaskTimeoutError) else KIND_EXCEPTION,
        "injected": isinstance(error, (InjectedFaultError, TaskTimeoutError))
        and getattr(error, "injected", isinstance(error, InjectedFaultError)),
        "fatal": is_fatal_error(error),
        "attempt": attempt,
        "traceback": "".join(
            traceback_module.format_exception(type(error), error, error.__traceback__)
        ),
    }


def crash_payload(error: BaseException, attempt: int) -> Dict[str, Any]:
    """The failure payload for a worker-death (``BrokenProcessPool``) event."""
    return {
        "type": type(error).__name__,
        "message": str(error) or "a sweep worker process died",
        "kind": KIND_CRASH,
        "injected": False,
        "attempt": attempt,
        "traceback": "",
    }


def failure_from_payload(task: Any, task_hash: str, payload: Mapping[str, Any]) -> TaskFailure:
    """A terminal :class:`TaskFailure` from one attempt's wire payload."""
    return TaskFailure(
        index=task.index,
        task_hash=task_hash,
        attempts=int(payload.get("attempt", 1)),
        error_type=str(payload.get("type", "Exception")),
        message=str(payload.get("message", "")),
        kind=str(payload.get("kind", KIND_EXCEPTION)),
        injected=bool(payload.get("injected", False)),
        traceback=str(payload.get("traceback", "")),
    )


# -- worker-side timeout ---------------------------------------------------------


def timeout_enforcement_available() -> bool:
    """Whether per-task timeouts can be enforced in this process.

    Requires ``SIGALRM`` (POSIX) and the main thread — ``signal.setitimer``
    is per-process and handlers only fire on the main thread.
    """
    return hasattr(signal, "SIGALRM") and threading.current_thread() is threading.main_thread()


@contextmanager
def task_timeout_guard(seconds: Optional[float]) -> Iterator[bool]:
    """Raise :class:`TaskTimeoutError` if the body runs longer than *seconds*.

    Yields whether enforcement is actually armed; with ``seconds`` unset,
    non-positive, or on platforms/threads without ``SIGALRM``, the guard is
    a no-op (best effort by design — results never depend on it).
    """
    if seconds is None or seconds <= 0 or not timeout_enforcement_available():
        yield False
        return

    def _expired(signum: int, frame: Any) -> None:
        raise TaskTimeoutError(seconds)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- fault plans -----------------------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """One chaos rule: *which* fault fires for *which* task attempts.

    A rule matches a task by canonical content hash (full hash or prefix,
    ``task_hash``) and/or expansion index (``index``); with neither set it
    matches every task.  ``attempts`` restricts the attempt numbers the
    fault fires on (empty = every attempt).  ``options`` parameterise the
    fault model (``seconds`` for ``task-hang``, ``exit_code`` for
    ``worker-kill``, ``message`` for ``task-exception``).
    """

    fault: str
    task_hash: Optional[str] = None
    index: Optional[int] = None
    attempts: Tuple[int, ...] = (1,)
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.fault not in FAULT_MODELS:
            raise ConfigurationError(
                f"unknown fault model {self.fault!r}; known: {', '.join(FAULT_MODELS)}"
            )
        object.__setattr__(self, "attempts", tuple(int(a) for a in self.attempts))

    def matches(self, task_hash: str, index: int, attempt: int) -> bool:
        """Whether this rule fires for ``(task, attempt)``."""
        if self.task_hash is not None and not task_hash.startswith(self.task_hash):
            return False
        if self.index is not None and self.index != index:
            return False
        return not self.attempts or attempt in self.attempts

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable mapping that round-trips through :meth:`from_dict`."""
        record: Dict[str, Any] = {"fault": self.fault, "attempts": list(self.attempts)}
        if self.task_hash is not None:
            record["task_hash"] = self.task_hash
        if self.index is not None:
            record["index"] = self.index
        if self.options:
            record["options"] = dict(self.options)
        return record

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "FaultRule":
        """Build a rule from a plain mapping (JSON/env use)."""
        known = {"fault", "task_hash", "index", "attempts", "options"}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fault rule keys {unknown}; valid keys: {sorted(known)}"
            )
        if "fault" not in mapping:
            raise ConfigurationError("a fault rule needs a 'fault' key")
        attempts = mapping.get("attempts", (1,))
        return cls(
            fault=str(mapping["fault"]),
            task_hash=mapping.get("task_hash"),
            index=mapping.get("index"),
            attempts=tuple(attempts) if attempts is not None else (),
            options=dict(mapping.get("options") or {}),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic chaos schedule: fault rules keyed by task + attempt.

    The plan is consulted inside :func:`~repro.sweep.executors.execute_task`
    at the start of every attempt; the first matching rule fires.  Plans are
    plain data (JSON round-trip, picklable) so one plan reaches the serial
    path, every pool worker and subprocesses launched from the CLI/CI
    (:data:`ENV_FAULTS`) unchanged.
    """

    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __bool__(self) -> bool:
        return bool(self.rules)

    def match(self, task_hash: str, index: int, attempt: int) -> Optional[FaultRule]:
        """The first rule firing for ``(task, attempt)``, or ``None``."""
        for rule in self.rules:
            if rule.matches(task_hash, index, attempt):
                return rule
        return None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable mapping that round-trips through :meth:`from_any`."""
        return {"rules": [rule.to_dict() for rule in self.rules]}

    def with_rules(self, *rules: FaultRule) -> "FaultPlan":
        """A copy of this plan with *rules* appended."""
        return replace(self, rules=self.rules + tuple(rules))

    @classmethod
    def from_any(cls, value: Optional[Any]) -> Optional["FaultPlan"]:
        """Coerce *value* (None, plan, rule sequence or mapping) to a plan."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, FaultRule):
            return cls(rules=(value,))
        if isinstance(value, Mapping):
            extra = sorted(set(value) - {"rules"})
            if extra:
                raise ConfigurationError(
                    f"unknown fault plan keys {extra}; valid keys: ['rules']"
                )
            value = value.get("rules") or ()
        if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
            rules = tuple(
                entry if isinstance(entry, FaultRule) else FaultRule.from_dict(entry)
                for entry in value
            )
            return cls(rules=rules)
        raise ConfigurationError(
            f"expected a fault plan, rule list or mapping, got {type(value).__name__}"
        )

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan injected through :data:`ENV_FAULTS`, or ``None``."""
        raw = os.environ.get(ENV_FAULTS, "").strip()
        if not raw:
            return None
        import json

        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{ENV_FAULTS} must hold a JSON fault plan, got {raw!r} ({error})"
            ) from None
        return cls.from_any(payload)


def trigger_fault(
    rule: FaultRule,
    *,
    scenario_key: Optional[str] = None,
    shm_manifest: Optional[Mapping[str, Any]] = None,
) -> None:
    """Fire *rule* in the current (worker or coordinator) process.

    * ``task-exception`` raises :class:`InjectedFaultError`;
    * ``task-hang`` sleeps ``options["seconds"]`` (default 3600) — with a
      task timeout armed the alarm converts the hang into a
      :class:`TaskTimeoutError`; if the sleep somehow completes, an
      :class:`InjectedFaultError` is raised so the hang stays observable;
    * ``worker-kill`` calls ``os._exit`` in a pool worker (the real crash
      path: no cleanup, no exception propagation); outside a worker it
      degrades to an injected exception so a serial chaos run is not
      killed — results are identical either way, only the failure kind
      differs;
    * ``shm-unlink`` unlinks the task's published shared-memory scenario
      segments (all segments when the task has none), exercising the
      degraded fallback to the per-worker build path.
    """
    if rule.fault == FAULT_TASK_EXCEPTION:
        raise InjectedFaultError(str(rule.options.get("message", "injected task fault")))
    if rule.fault == FAULT_TASK_HANG:
        time.sleep(float(rule.options.get("seconds", 3600.0)))
        raise InjectedFaultError("injected task hang ran to completion without a timeout")
    if rule.fault == FAULT_WORKER_KILL:
        if in_worker_process():
            os._exit(int(rule.options.get("exit_code", 13)))
        raise InjectedFaultError(
            "injected worker-kill (degraded to a task exception outside a pool worker)"
        )
    if rule.fault == FAULT_SHM_UNLINK:
        if shm_manifest:
            from repro.sweep.shm import unlink_segments

            keys: List[str] = (
                [scenario_key] if scenario_key in shm_manifest else list(shm_manifest)
            )
            for key in keys:
                unlink_segments(shm_manifest, key)
        return
    raise ConfigurationError(f"unknown fault model {rule.fault!r}")  # pragma: no cover
