"""Shared-memory scenario arrays for multi-process sweeps.

A process-pool sweep used to pay the dominant scenario cost — the |P| x |P|
weighted recall arrays — once *per worker process*: each worker rebuilds the
dense :class:`~repro.core.recall_matrix.WeightedRecallMatrix` from its own
scenario copy.  This module publishes those arrays **once**, from the
coordinator, into :class:`multiprocessing.shared_memory.SharedMemory`
segments; workers attach zero-copy read-only views and adopt them through
:meth:`PeerNetwork.adopt_recall_matrix`, so per-worker cost and RSS stop
scaling with the matrix size.

The tier is transparent:

* it only applies to tasks whose runner does **not** mutate the scenario
  (mutating runners deep-copy their scenario, which drops derived-model
  caches by design — exactly as before);
* the published arrays are the same deterministic product a worker would
  build itself, so results are byte-identical with the tier on or off (the
  parity suite asserts this at ``workers=4``);
* when :func:`shared_memory_available` is false (no ``/dev/shm``, platform
  without the module), publication is skipped and workers silently build
  their own arrays, the pre-tier behaviour.

Lifecycle: the coordinator owns the segments — :class:`ScenarioArrayServer`
creates them before dispatch and unlinks them after the sweep
(``close()``), with an ``atexit`` hook as a backstop so an abnormal
coordinator exit does not strand segments in ``/dev/shm`` until reboot.
Workers attach without resource-tracker registration (see
:func:`_attach_array`) so a worker exiting does not tear the segment down
under its siblings — CPython registers attached segments for cleanup until
3.13's ``track=False``.

Degradation is observable: any failed attach/adopt is logged
(``repro.sweep.shm``) and recorded per process; the executors drain the
record (:func:`consume_degraded_keys`) and the engine emits one
``shm_degraded`` event per affected task.  Results never depend on the
tier — a degraded task simply builds its arrays the ordinary way.
"""

from __future__ import annotations

import atexit
import logging
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.recall_matrix import WeightedRecallMatrix
from repro.registry import scenario_registry
from repro.sweep.store import scenario_hash

__all__ = [
    "shared_memory_available",
    "scenario_shm_key",
    "ScenarioArrayServer",
    "adopt_shared_matrix",
    "unlink_segments",
    "consume_degraded_keys",
]

logger = logging.getLogger("repro.sweep.shm")

#: Manifest entry: scenario key -> segment names + array metadata.
ShmManifest = Dict[str, Dict[str, Any]]

_ARRAY_FIELDS = ("local", "global", "service")


def shared_memory_available() -> bool:
    """Whether POSIX shared memory actually works on this platform.

    Importing the module is not enough (containers may lack ``/dev/shm``);
    probe by round-tripping a tiny segment.
    """
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=16)
        try:
            segment.buf[0] = 1
        finally:
            segment.close()
            segment.unlink()
        return True
    except (ImportError, OSError, ValueError):
        return False


def scenario_shm_key(session_config: Any) -> str:
    """The manifest key for a task's scenario: the store's scenario hash."""
    name = scenario_registry.canonical_name(session_config.scenario)
    return scenario_hash(name, session_config.experiment_config().scenario)


class ScenarioArrayServer:
    """Coordinator-side owner of the published shared-memory segments.

    ``publish_for_tasks`` builds each distinct pending scenario once (through
    the ordinary scenario memo, so the store tier and the coordinator cache
    are reused), materialises its dense recall arrays and copies them into
    shared segments.  The resulting :attr:`manifest` is a plain JSON-style
    dict that travels to workers inside the executor context.  Call
    :meth:`close` (or use as a context manager) to unlink everything.
    """

    def __init__(self) -> None:
        self._segments: List[Any] = []
        self.manifest: ShmManifest = {}
        # Backstop for abnormal coordinator exits (unhandled exception,
        # sys.exit mid-sweep): without it the published segments survive the
        # process and sit in /dev/shm until reboot.  close() unregisters.
        atexit.register(self._cleanup_at_exit)

    def _cleanup_at_exit(self) -> None:
        if not self._segments:
            return
        logger.warning(
            "coordinator exiting with %d shared-memory segment(s) still "
            "published; unlinking them now",
            len(self._segments),
        )
        self.close()

    # -- publishing ----------------------------------------------------------

    def _publish_array(self, array: np.ndarray) -> Dict[str, Any]:
        from multiprocessing import shared_memory

        contiguous = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True, size=contiguous.nbytes)
        self._segments.append(segment)
        view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf)
        view[...] = contiguous
        return {
            "name": segment.name,
            "shape": list(contiguous.shape),
            "dtype": str(contiguous.dtype),
        }

    def publish_scenario(self, key: str, network: Any) -> None:
        """Publish *network*'s dense recall arrays under manifest key *key*."""
        if key in self.manifest:
            return
        matrix = network.recall_matrix()
        self.manifest[key] = {
            "peers": len(matrix.peer_order),
            "local": self._publish_array(matrix.local_view()),
            "global": self._publish_array(matrix.global_view()),
            "service": self._publish_array(matrix.service_view()),
        }

    def publish_for_tasks(self, tasks: Any, *, store: Optional[Any] = None) -> ShmManifest:
        """Publish every distinct scenario among *tasks* with a non-mutating runner."""
        from repro.sweep.cache import runner_mutates_scenario, scenario_data_for
        from repro.sweep.runners import resolve_runner

        for task in tasks:
            runner = resolve_runner(task.runner)
            if runner_mutates_scenario(runner):
                continue
            config = task.session_config()
            key = scenario_shm_key(config)
            if key in self.manifest:
                continue
            data = scenario_data_for(config, mutates=False, store=store)
            self.publish_scenario(key, data.network)
        return self.manifest

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover - defensive
                pass
        self._segments = []
        self.manifest = {}
        atexit.unregister(self._cleanup_at_exit)

    def __enter__(self) -> "ScenarioArrayServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ScenarioArrayServer(scenarios={len(self.manifest)}, segments={len(self._segments)})"


# -- worker side -------------------------------------------------------------

#: Per-process memo of attached matrices: manifest key -> (matrix, segments).
#: Keeping the SharedMemory handles referenced pins the buffers for as long
#: as any adopted matrix is alive in this process.
_ATTACHED: Dict[str, Tuple[WeightedRecallMatrix, List[Any]]] = {}

#: Scenario keys this process fell back on since the last drain — the
#: executors read this after each task and surface ``shm_degraded`` events.
_DEGRADED: List[str] = []


def _record_degraded(key: str, reason: str) -> None:
    logger.warning("shared-memory tier degraded for scenario %s: %s", key, reason)
    _DEGRADED.append(key)


def consume_degraded_keys() -> List[str]:
    """Drain and return the scenario keys this process degraded on."""
    drained = list(_DEGRADED)
    _DEGRADED.clear()
    return drained


def _attach_array(entry: Dict[str, Any], segments: List[Any]) -> np.ndarray:
    from multiprocessing import shared_memory

    # Attaching registers the segment with the resource tracker on
    # CPython < 3.13 (no track=False yet), which would unlink it when this
    # worker exits — pulling the arrays out from under the coordinator and
    # the other workers.  The coordinator owns the lifecycle, so suppress
    # registration for the duration of the attach.
    try:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
    except ImportError:  # pragma: no cover - platform without the tracker
        resource_tracker = None
        original_register = None
    try:
        segment = shared_memory.SharedMemory(name=entry["name"], create=False)
    finally:
        if resource_tracker is not None:
            resource_tracker.register = original_register
    segments.append(segment)
    view = np.ndarray(
        tuple(entry["shape"]), dtype=np.dtype(entry["dtype"]), buffer=segment.buf
    )
    view.flags.writeable = False
    return view


def adopt_shared_matrix(network: Any, key: str, manifest: ShmManifest) -> bool:
    """Attach the published arrays for *key* and install them on *network*.

    Returns ``True`` when the network now uses the shared arrays, ``False``
    when the manifest has no entry for *key* or attachment failed (the
    caller keeps the ordinary build path; the tier is best-effort).
    """
    entry = manifest.get(key)
    if entry is None:
        # A key the coordinator never published is not degradation — the
        # manifest legitimately omits mutating-runner scenarios.
        return False
    cached = _ATTACHED.get(key)
    if cached is not None:
        matrix = cached[0]
    else:
        segments: List[Any] = []
        try:
            local = _attach_array(entry["local"], segments)
            global_matrix = _attach_array(entry["global"], segments)
            service = _attach_array(entry["service"], segments)
        except (OSError, FileNotFoundError, KeyError) as error:
            for segment in segments:
                try:
                    segment.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            _record_degraded(
                key, f"segment attach failed ({type(error).__name__}: {error})"
            )
            return False
        matrix = WeightedRecallMatrix.from_arrays(
            network.recall_model(),
            network.workloads(),
            network.peer_ids(),
            local=local,
            global_matrix=global_matrix,
            service=service,
        )
        # Pin the segment handles for the lifetime of the adopted matrix.
        matrix.shm_segments = segments
        _ATTACHED[key] = (matrix, segments)
    try:
        network.adopt_recall_matrix(matrix)
    except Exception as error:
        _record_degraded(key, f"adoption failed ({type(error).__name__}: {error})")
        return False
    return True


def unlink_segments(manifest: ShmManifest, key: str) -> int:
    """Forcibly unlink the published segments behind manifest entry *key*.

    The ``shm-unlink`` chaos fault: simulates segment loss mid-sweep (a
    reaped ``/dev/shm``, an OOM-killed coordinator's leftovers being
    cleaned).  Returns how many segments were actually unlinked.  Processes
    already attached keep their mappings (POSIX semantics); fresh attaches
    fail and degrade to the ordinary build path.
    """
    from multiprocessing import shared_memory

    entry = manifest.get(key)
    if entry is None:
        return 0
    unlinked = 0
    for field in _ARRAY_FIELDS:
        name = entry.get(field, {}).get("name")
        if not name:
            continue
        try:
            segment = shared_memory.SharedMemory(name=name, create=False)
        except (OSError, FileNotFoundError):
            continue
        try:
            segment.close()
            segment.unlink()
            unlinked += 1
        except (OSError, FileNotFoundError):  # pragma: no cover - race with close
            pass
    return unlinked


def clear_attached() -> None:
    """Drop this process's attached-matrix memo (used by tests)."""
    for _matrix, segments in _ATTACHED.values():
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - defensive
                pass
    _ATTACHED.clear()


__all__.append("clear_attached")
