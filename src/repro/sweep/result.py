"""Aggregation and persistence of sweep outcomes.

:class:`SweepResult` pairs the expanded task list with one
:class:`~repro.session.result.RunResult` per task (in task order), persists
the whole sweep as JSONL (one self-describing record per line) and reduces
replications to mean/stddev/95%-CI summaries through
:func:`repro.analysis.reporting.summary_statistics`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from repro.analysis.reporting import SummaryStats, format_table, summary_statistics
from repro.errors import ConfigurationError
from repro.session.result import RunResult
from repro.sweep.faults import TaskFailure
from repro.sweep.spec import SweepSpec, SweepTask

__all__ = ["SweepResult", "read_jsonl", "DEFAULT_SUMMARY_METRICS", "DEFAULT_GROUP_FIELDS"]

#: Metrics summarised by default — the quantities Table 1 reports per run.
DEFAULT_SUMMARY_METRICS: Tuple[str, ...] = (
    "final_social_cost",
    "final_workload_cost",
    "rounds",
    "moves",
    "cluster_count",
)
#: Config fields a summary groups by (seeds within a group are aggregated).
#: ``dynamics`` and ``traffic`` keep drift/workload variants of an otherwise
#: identical configuration apart — without them a drift or traffic-workload
#: sweep would pool its grid points into one row.
DEFAULT_GROUP_FIELDS: Tuple[str, ...] = (
    "scenario",
    "initial",
    "strategy",
    "dynamics",
    "traffic",
)


def _group_value(value: Any) -> Any:
    """A hashable, stable form of one group-key config value.

    Dynamics specs (and any other mapping/list-valued field, e.g.
    ``traffic``) are unhashable dicts; render them as compact, key-sorted
    JSON so equal specs pool and different specs stay apart.  ``None`` —
    the field is absent — becomes ``"-"`` for clean table rows.
    """
    if value is None:
        return "-"
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    return value


@dataclass
class SweepResult:
    """Everything a finished sweep produced, in task order.

    ``results`` holds one entry per *completed* task; tasks that exhausted
    their retry budget appear in ``failures`` instead (quarantine), so
    ``len(results) + len(failures) == len(tasks)``.  Record/summary views
    skip quarantined tasks.
    """

    spec: SweepSpec
    tasks: List[SweepTask]
    results: List[RunResult]
    #: Worker-side wall-clock seconds per task (task order).
    task_durations: List[float] = field(default_factory=list)
    #: Coordinator wall-clock seconds for the whole sweep.
    duration: float = 0.0
    #: Worker count the sweep ran with (informational; results don't depend on it).
    workers: int = 1
    #: ``describe()`` string of the executor that ran the sweep (informational).
    executor: str = "serial"
    #: Tasks actually executed this run (``len(tasks)`` minus store loads).
    executed: int = 0
    #: Tasks whose results were loaded from the content-addressed store.
    loaded: int = 0
    #: Tasks quarantined after exhausting their retry budget (task order).
    failures: List[TaskFailure] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def completed_pairs(self) -> Iterator[Tuple[SweepTask, RunResult]]:
        """``(task, result)`` pairs for every non-quarantined task, in task order."""
        failed = {failure.index for failure in self.failures}
        result_iter = iter(self.results)
        for task in self.tasks:
            if task.index in failed:
                continue
            yield task, next(result_iter)

    # -- store views ---------------------------------------------------------------

    @classmethod
    def from_store(cls, spec: SweepSpec, store: Any) -> "SweepResult":
        """Assemble a finished sweep purely from stored results — no execution.

        Expands and validates *spec*, looks every task up in *store* (a
        :class:`~repro.sweep.store.ResultStore` or its root path) by content
        hash and merges the stored results into one :class:`SweepResult`,
        byte-identical to what ``run_sweep(spec, store=...)`` would return
        once everything has run.  This is the merge step for sharded grids:
        N shards each fill part of one store, then the full spec is loaded
        back here.  Missing tasks raise
        :class:`~repro.errors.ConfigurationError` naming how many are absent.
        """
        from repro.sweep.store import ResultStore, task_hash

        store_obj = ResultStore.from_any(store)
        if store_obj is None:
            raise ConfigurationError("SweepResult.from_store needs a store")
        tasks = spec.validate()
        results: List[RunResult] = []
        durations: List[float] = []
        missing: List[int] = []
        for task in tasks:
            stored = store_obj.get(task_hash(task))
            if stored is None:
                missing.append(task.index)
            else:
                results.append(stored.result)
                durations.append(stored.duration)
        if missing:
            preview = ", ".join(str(index) for index in missing[:10])
            quarantined = sum(
                1
                for index in missing
                if store_obj.get_failure(task_hash(tasks[index])) is not None
            )
            detail = (
                f" ({quarantined} of them quarantined after failing)" if quarantined else ""
            )
            raise ConfigurationError(
                f"store {str(store_obj.root)!r} is missing {len(missing)} of "
                f"{len(tasks)} tasks (task indexes {preview}"
                f"{', ...' if len(missing) > 10 else ''}){detail}; "
                "run run_sweep(spec, store=...) to fill in the gaps"
            )
        return cls(
            spec=spec,
            tasks=tasks,
            results=results,
            task_durations=durations,
            executor="store",
            executed=0,
            loaded=len(tasks),
        )

    # -- record views --------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """One JSON-safe record per completed task: the task plus its result."""
        records = []
        for task, result in self.completed_pairs():
            duration = (
                self.task_durations[task.index]
                if task.index < len(self.task_durations)
                else 0.0
            )
            records.append(
                {
                    "kind": "task",
                    "task": task.to_dict(),
                    "result": result.to_dict(),
                    "duration": duration,
                }
            )
        return records

    def failure_records(self) -> List[Dict[str, Any]]:
        """One JSON-safe record per quarantined task."""
        return [
            {
                "kind": "task-failure",
                "task": self.tasks[failure.index].to_dict(),
                "failure": failure.to_dict(),
            }
            for failure in self.failures
        ]

    # -- persistence ---------------------------------------------------------------

    def write_jsonl(self, path: str) -> None:
        """Persist the sweep as JSONL: a spec header line, then one task line each."""
        header = {
            "kind": "sweep",
            "spec": self.spec.to_dict(),
            "num_tasks": len(self.tasks),
            "duration": self.duration,
            "workers": self.workers,
            "executor": self.executor,
            "executed": self.executed,
            "loaded": self.loaded,
            "quarantined": len(self.failures),
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for record in self.records():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            for record in self.failure_records():
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    # -- summaries -----------------------------------------------------------------

    @staticmethod
    def _metric_value(result: RunResult, metric: str) -> float:
        """One result's value for *metric* (runner extras shadow result fields)."""
        if metric in result.extras:
            return float(result.extras[metric])
        if not hasattr(result, metric):
            raise ConfigurationError(
                f"unknown sweep metric {metric!r}: neither a RunResult field "
                "nor a runner extra of this sweep"
            )
        return float(getattr(result, metric))

    def metric_values(self, metric: str) -> List[float]:
        """Per-completed-task values of one :class:`RunResult` metric, in task order."""
        return [self._metric_value(result, metric) for _task, result in self.completed_pairs()]

    def summarize(
        self,
        *,
        metrics: Sequence[str] = DEFAULT_SUMMARY_METRICS,
        group_by: Sequence[str] = DEFAULT_GROUP_FIELDS,
    ) -> Dict[Tuple[Any, ...], Dict[str, SummaryStats]]:
        """Mean/stddev/CI of *metrics*, grouped by config fields.

        Tasks whose configs agree on every ``group_by`` field (typically:
        replications of the same configuration under different seeds) are
        pooled; the result maps the group key tuple to one
        :class:`~repro.analysis.reporting.SummaryStats` per metric, in first-
        appearance (task) order.
        """
        grouped: Dict[Tuple[Any, ...], List[RunResult]] = {}
        for task, result in self.completed_pairs():
            key = tuple(
                _group_value(task.config.get(field_name)) for field_name in group_by
            )
            grouped.setdefault(key, []).append(result)
        summary: Dict[Tuple[Any, ...], Dict[str, SummaryStats]] = {}
        for key, results in grouped.items():
            summary[key] = {
                metric: summary_statistics(
                    [self._metric_value(result, metric) for result in results]
                )
                for metric in metrics
            }
        return summary

    def summary_table(
        self,
        *,
        metrics: Sequence[str] = DEFAULT_SUMMARY_METRICS,
        group_by: Sequence[str] = DEFAULT_GROUP_FIELDS,
    ) -> str:
        """Plain-text summary: one row per (group, metric)."""
        headers = tuple(group_by) + ("metric", "n", "mean", "stddev", "ci95 low", "ci95 high")
        rows = []
        for key, per_metric in self.summarize(metrics=metrics, group_by=group_by).items():
            for metric, stats in per_metric.items():
                rows.append(tuple(key) + (metric,) + tuple(stats.as_sequence()))
        return format_table(headers, rows)


def read_jsonl(path: str) -> Tuple[SweepSpec, List[Dict[str, Any]]]:
    """Load a persisted sweep: ``(spec, task records)``.

    Records are plain dicts (``{"task": ..., "result": ..., "duration": ...}``)
    in task order — the JSON-facing mirror of :meth:`SweepResult.records`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines or lines[0].get("kind") != "sweep":
        raise ConfigurationError(f"{path!r} is not a sweep JSONL file (missing header)")
    spec = SweepSpec.from_dict(lines[0]["spec"])
    records = [record for record in lines[1:] if record.get("kind") == "task"]
    return spec, records
