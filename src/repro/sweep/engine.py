"""The process-pool sweep executor.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` into its
ordered task list, fans the tasks out over a ``concurrent.futures``
process pool (``workers=1`` runs inline in the coordinating process — same
code path, no pool) and collects one
:class:`~repro.session.result.RunResult` per task, re-ordered by task index
so the outcome is independent of completion order.

Determinism: every task carries its own seed (derived in the spec, never
here), each worker builds its simulation from the task's plain-dict config,
and nothing about scheduling feeds back into the tasks — so any worker
count produces byte-identical results.

Progress streams through :class:`~repro.events.EventHooks`:
``task_started`` when a task is submitted (under ``workers > 1`` every task
is submitted up front, so these arrive in a burst), ``task_finished`` when
its result arrives (completion order), ``sweep_end`` once at the end.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.events import (
    SWEEP_END,
    TASK_FINISHED,
    TASK_STARTED,
    EventHooks,
    SweepEndEvent,
    TaskFinishedEvent,
    TaskStartedEvent,
)
from repro.session.result import RunResult
from repro.session.simulation import Simulation
from repro.sweep.result import SweepResult
from repro.sweep.spec import SweepSpec, SweepTask

__all__ = ["run_sweep", "execute_task"]


def execute_task(task: SweepTask, *, scenario_cache: bool = True) -> Tuple[RunResult, float]:
    """Run one sweep task to completion; returns ``(result, seconds)``.

    This is the whole per-worker protocol: materialise the task's
    :class:`~repro.session.config.SessionConfig`, fetch (or build) the
    scenario data through the per-worker memo, assemble a
    :class:`~repro.session.simulation.Simulation`, hand it to the task's
    registered runner, and return the runner's JSON-exportable
    :class:`RunResult`.  The raw ``protocol_result`` is dropped — it is not
    part of the exportable surface and would dominate pickling cost.

    With ``scenario_cache=True`` (the default) tasks sharing a
    ``(scenario, ScenarioConfig)`` key reuse one built
    :class:`~repro.datasets.scenarios.ScenarioData` per process; runners
    registered as scenario-mutating get a private deep copy (copy-on-write),
    so results are byte-identical with and without the cache.
    """
    from repro.sweep.cache import (
        runner_mutates_scenario,
        scenario_cache_enabled,
        scenario_data_for,
    )
    from repro.sweep.runners import resolve_runner

    runner = resolve_runner(task.runner)
    started = time.perf_counter()
    config = task.session_config()
    data = None
    if scenario_cache and scenario_cache_enabled():
        data = scenario_data_for(config, mutates=runner_mutates_scenario(runner))
    simulation = Simulation.from_config(config, data=data)
    result = runner(simulation, dict(task.options))
    result.protocol_result = None
    return result, time.perf_counter() - started


def _execute_payload(
    payload: Dict[str, object], scenario_cache: bool = True
) -> Tuple[RunResult, float]:
    """Process-pool entry point: rebuild the task from its dict form and run it."""
    return execute_task(SweepTask.from_dict(payload), scenario_cache=scenario_cache)


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    hooks: Optional[EventHooks] = None,
    jsonl_path: Optional[str] = None,
    scenario_cache: bool = True,
) -> SweepResult:
    """Run every task of *spec* and aggregate the results.

    Parameters
    ----------
    workers:
        Process count.  ``1`` executes inline (deterministic reference
        path, easiest to debug); ``> 1`` fans out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`.  Results are
        identical either way.
    hooks:
        Event hub receiving ``task_started`` / ``task_finished`` /
        ``sweep_end``; a private one is created when omitted.
    jsonl_path:
        When given, the finished sweep is persisted there as JSONL
        (see :meth:`~repro.sweep.result.SweepResult.write_jsonl`).
    scenario_cache:
        Memoise built scenarios per worker process (copy-on-write for
        mutating runners).  On by default; results do not depend on it.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be at least 1, got {workers}")
    hooks = hooks if hooks is not None else EventHooks()
    tasks = spec.validate()
    total = len(tasks)
    sweep_started = time.perf_counter()
    results: List[Optional[RunResult]] = [None] * total
    durations: List[float] = [0.0] * total
    completed = 0

    def finish(task: SweepTask, result: RunResult, duration: float) -> None:
        nonlocal completed
        results[task.index] = result
        durations[task.index] = duration
        completed += 1
        hooks.emit(
            TASK_FINISHED,
            TaskFinishedEvent(
                index=task.index,
                task=task,
                result=result,
                total=total,
                completed=completed,
                duration=duration,
            ),
        )

    if workers == 1 or total <= 1:
        for task in tasks:
            hooks.emit(TASK_STARTED, TaskStartedEvent(index=task.index, task=task, total=total))
            result, duration = execute_task(task, scenario_cache=scenario_cache)
            finish(task, result, duration)
    else:
        with ProcessPoolExecutor(max_workers=min(workers, total)) as pool:
            pending = {}
            for task in tasks:
                hooks.emit(
                    TASK_STARTED, TaskStartedEvent(index=task.index, task=task, total=total)
                )
                pending[pool.submit(_execute_payload, task.to_dict(), scenario_cache)] = task
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    task = pending.pop(future)
                    result, duration = future.result()
                    finish(task, result, duration)

    sweep_duration = time.perf_counter() - sweep_started
    hooks.emit(
        SWEEP_END, SweepEndEvent(total=total, duration=sweep_duration, workers=workers)
    )
    sweep_result = SweepResult(
        spec=spec,
        tasks=tasks,
        results=[result for result in results if result is not None],
        task_durations=durations,
        duration=sweep_duration,
        workers=workers,
    )
    if len(sweep_result.results) != total:  # pragma: no cover - defensive
        raise RuntimeError("sweep finished with missing task results")
    if jsonl_path is not None:
        sweep_result.write_jsonl(jsonl_path)
    return sweep_result
