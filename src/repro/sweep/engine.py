"""The sweep engine: expansion, resume, executor dispatch and aggregation.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` into its
ordered task list, skips every task whose content hash already has a result
in the (optional) :class:`~repro.sweep.store.ResultStore` — **resume** —
and hands the remaining tasks to a pluggable
:class:`~repro.sweep.executors.SweepExecutor` (``serial``, ``process-pool``,
``chunked-streaming``, ``distributed``, or any registered/constructed
executor).  Outcomes
are re-ordered by task index, so the final :class:`SweepResult` is
independent of executor choice, worker count, completion order and of how
many tasks were loaded versus executed.

Determinism: every task carries its own seed (derived in the spec, never
here), each worker builds its simulation from the task's plain-dict config,
and nothing about scheduling feeds back into the tasks — so any executor
produces byte-identical results, and a resumed sweep's merged result is
byte-identical to one uninterrupted run.

Progress streams through :class:`~repro.events.EventHooks`: ``task_started``
when the executor admits a task attempt to its in-flight window (see
:mod:`repro.sweep.executors` for the per-executor ordering contract),
``task_finished`` when its result arrives (completion order),
``task_skipped`` + ``task_loaded`` for store hits (before any execution
starts, in task order), ``task_failed`` / ``task_retried`` /
``task_quarantined`` for the fault-tolerance layer
(:mod:`repro.sweep.faults`), ``shm_degraded`` when a task lost the
shared-memory scenario tier, and ``sweep_end`` once at the end.

Fault tolerance: with ``retries``/``task_timeout`` (or their spec fields) a
failed task is re-executed up to the policy's budget and otherwise
**quarantined** — recorded in ``SweepResult.failures`` (and under its
content hash in the store's quarantine tier) while the sweep completes with
partial results.  A ``faults=`` plan (or the ``REPRO_SWEEP_FAULTS``
environment variable) injects deterministic chaos for testing.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, List, Optional

from repro.errors import ConfigurationError
from repro.events import (
    LEASE_RECLAIMED,
    SHM_DEGRADED,
    SWEEP_END,
    TASK_FAILED,
    TASK_FINISHED,
    TASK_LOADED,
    TASK_QUARANTINED,
    TASK_RETRIED,
    TASK_SKIPPED,
    TASK_STARTED,
    EventHooks,
    LeaseReclaimedEvent,
    ShmDegradedEvent,
    SweepEndEvent,
    TaskFailedEvent,
    TaskFinishedEvent,
    TaskLoadedEvent,
    TaskQuarantinedEvent,
    TaskRetriedEvent,
    TaskSkippedEvent,
    TaskStartedEvent,
)
from repro.session.result import RunResult
from repro.sweep.executors import (
    ExecutorContext,
    SweepExecutor,
    execute_task,
    resolve_executor,
)
from repro.sweep.faults import FaultPlan, RetryPolicy, TaskFailure
from repro.sweep.result import SweepResult
from repro.sweep.spec import SweepSpec, SweepTask
from repro.sweep.store import ResultStore, task_hash

__all__ = ["run_sweep", "execute_task"]


def run_sweep(
    spec: SweepSpec,
    *,
    executor: Optional[Any] = None,
    workers: Optional[int] = None,
    hooks: Optional[EventHooks] = None,
    jsonl_path: Optional[str] = None,
    scenario_cache: bool = True,
    store: Optional[Any] = None,
    resume: bool = True,
    shm: Optional[bool] = None,
    retries: Optional[Any] = None,
    task_timeout: Optional[float] = None,
    faults: Optional[Any] = None,
) -> SweepResult:
    """Run every task of *spec* and aggregate the results.

    Parameters
    ----------
    executor:
        How tasks execute: a registered executor name (``"serial"``,
        ``"process-pool"``, ``"chunked-streaming"``, ``"distributed"``), a
        JSON-style spec
        (``{"name": "process-pool", "options": {"max_workers": 8}}``) or a
        :class:`~repro.sweep.executors.SweepExecutor` instance.  Default:
        the serial executor.  Results are identical for every executor.
    workers:
        Deprecated alias, kept only for old call sites: ``1`` maps to
        ``serial``, ``N > 1`` to ``process-pool`` with ``N`` workers, and a
        ``DeprecationWarning`` is emitted.  Pass an ``executor=`` spec
        instead — ``executor={"name": "process-pool", "options":
        {"max_workers": N}}`` — which is also where every other backend's
        options live.  Mutually exclusive with ``executor``.
    hooks:
        Event hub receiving ``task_started`` / ``task_finished`` /
        ``task_skipped`` / ``task_loaded`` / ``sweep_end``; a private one is
        created when omitted.
    jsonl_path:
        When given, the finished sweep is persisted there as JSONL
        (see :meth:`~repro.sweep.result.SweepResult.write_jsonl`).
    scenario_cache:
        Memoise built scenarios per worker process (copy-on-write for
        mutating runners).  On by default; results do not depend on it.
    store:
        A :class:`~repro.sweep.store.ResultStore` (or its root path).  Every
        finished task is persisted under its content hash as it completes,
        and built scenario data is shared across workers and cold starts
        through the store's scenario tier.
    resume:
        With a store: skip every task whose content hash already has a
        stored result, loading it instead (default).  ``resume=False``
        re-executes everything (and refreshes the store).  The merged
        result is byte-identical either way.
    shm:
        Shared-memory scenario tier (:mod:`repro.sweep.shm`): the
        coordinator publishes each pending scenario's dense recall arrays
        once and workers attach read-only views instead of rebuilding them
        per process.  ``None`` (default) auto-enables for multi-process
        executors when the platform supports it; ``True`` forces it on
        (still skipped when unsupported); ``False`` disables it.  Results
        are byte-identical either way.
    retries:
        Retry budget for failed tasks: an integer retry count, a mapping of
        :class:`~repro.sweep.faults.RetryPolicy` fields (``backoff``,
        ``jitter``, ``crash_requeues``, ...) or a policy instance.  Default:
        the spec's ``retries`` field (itself defaulting to 0 — one attempt,
        no retries).  A task that exhausts the budget is quarantined: the
        sweep completes, the failure lands in ``SweepResult.failures`` and
        (with a store) the store's quarantine tier.
    task_timeout:
        Per-task wall-clock budget in seconds, enforced worker-side via
        ``SIGALRM`` (best effort: no-op on platforms without it).  Default:
        the spec's ``task_timeout`` field.  A timed-out attempt fails like
        an exception and follows the retry policy.
    faults:
        A :class:`~repro.sweep.faults.FaultPlan` (or its JSON form) of
        deterministic chaos rules keyed by canonical task hash + attempt.
        Default: the ``REPRO_SWEEP_FAULTS`` environment variable, else
        nothing.  Test-only machinery — never set in production sweeps.
    """
    if workers is not None:
        warnings.warn(
            "run_sweep(workers=N) is deprecated; pass executor='process-pool' "
            "(or an executor spec with max_workers) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if workers < 1:
            raise ConfigurationError(f"workers must be at least 1, got {workers}")
    executor_obj: SweepExecutor = resolve_executor(executor, workers=workers)
    hooks = hooks if hooks is not None else EventHooks()
    result_store = ResultStore.from_any(store)
    retry_policy = RetryPolicy.from_any(retries if retries is not None else spec.retries)
    timeout = task_timeout if task_timeout is not None else spec.task_timeout
    fault_plan = FaultPlan.from_any(faults) if faults is not None else FaultPlan.from_env()
    tasks = spec.validate()
    total = len(tasks)
    sweep_started = time.perf_counter()
    results: List[Optional[RunResult]] = [None] * total
    durations: List[float] = [0.0] * total
    failures: List[TaskFailure] = []
    completed = 0
    loaded = 0

    # -- resume: load stored results, collect what is left to run ------------------
    pending: List[SweepTask]
    if result_store is not None and resume:
        pending = []
        for task in tasks:
            hash_hex = task_hash(task)
            stored = result_store.get(hash_hex)
            if stored is None:
                pending.append(task)
                continue
            results[task.index] = stored.result
            durations[task.index] = stored.duration
            completed += 1
            loaded += 1
            hooks.emit(
                TASK_SKIPPED,
                TaskSkippedEvent(
                    index=task.index, task=task, total=total, task_hash=hash_hex
                ),
            )
            hooks.emit(
                TASK_LOADED,
                TaskLoadedEvent(
                    index=task.index,
                    task=task,
                    result=stored.result,
                    total=total,
                    completed=completed,
                    task_hash=hash_hex,
                    duration=stored.duration,
                ),
            )
    else:
        pending = list(tasks)

    # -- execute what remains through the executor ---------------------------------
    def on_started(task: SweepTask, attempt: int = 1) -> None:
        hooks.emit(
            TASK_STARTED,
            TaskStartedEvent(index=task.index, task=task, total=total, attempt=attempt),
        )

    def on_task_failed(
        task: SweepTask, attempt: int, error: dict, will_retry: bool, delay: float
    ) -> None:
        hooks.emit(
            TASK_FAILED,
            TaskFailedEvent(
                index=task.index,
                task=task,
                total=total,
                attempt=attempt,
                error=dict(error),
                will_retry=will_retry,
            ),
        )
        if will_retry:
            hooks.emit(
                TASK_RETRIED,
                TaskRetriedEvent(
                    index=task.index,
                    task=task,
                    total=total,
                    attempt=attempt + 1,
                    delay=delay,
                ),
            )

    def on_lease_reclaimed(
        task: SweepTask, attempt: int, worker: str, will_retry: bool
    ) -> None:
        hooks.emit(
            LEASE_RECLAIMED,
            LeaseReclaimedEvent(
                index=task.index,
                task=task,
                total=total,
                attempt=attempt,
                worker=worker,
                will_retry=will_retry,
            ),
        )

    shm_server = None
    shm_manifest = None
    if pending and scenario_cache and shm is not False and executor_obj.workers > 1:
        from repro.sweep.shm import ScenarioArrayServer, shared_memory_available

        if shared_memory_available():
            shm_server = ScenarioArrayServer()
            shm_manifest = shm_server.publish_for_tasks(pending, store=result_store)
            if not shm_manifest:
                shm_server.close()
                shm_server = None
                shm_manifest = None

    context = ExecutorContext(
        scenario_cache=scenario_cache,
        store_path=str(result_store.root) if result_store is not None else None,
        on_started=on_started,
        shm_manifest=shm_manifest,
        retry_policy=retry_policy,
        task_timeout=timeout,
        faults=fault_plan,
        on_task_failed=on_task_failed,
        on_lease_reclaimed=on_lease_reclaimed,
    )
    try:
        for outcome in executor_obj.run(pending, context):
            task = outcome.task
            if outcome.failure is not None:
                failures.append(outcome.failure)
                if result_store is not None:
                    result_store.put_failure(task, outcome.failure)
                hooks.emit(
                    TASK_QUARANTINED,
                    TaskQuarantinedEvent(
                        index=task.index, task=task, total=total, failure=outcome.failure
                    ),
                )
                continue
            for scenario_key in outcome.degraded:
                hooks.emit(
                    SHM_DEGRADED,
                    ShmDegradedEvent(index=task.index, task=task, scenario_key=scenario_key),
                )
            results[task.index] = outcome.result
            durations[task.index] = outcome.duration
            completed += 1
            hooks.emit(
                TASK_FINISHED,
                TaskFinishedEvent(
                    index=task.index,
                    task=task,
                    result=outcome.result,
                    total=total,
                    completed=completed,
                    duration=outcome.duration,
                    attempt=outcome.attempt,
                ),
            )
    finally:
        if shm_server is not None:
            shm_server.close()

    sweep_duration = time.perf_counter() - sweep_started
    executed = total - loaded - len(failures)
    hooks.emit(
        SWEEP_END,
        SweepEndEvent(
            total=total,
            duration=sweep_duration,
            workers=executor_obj.workers,
            executed=executed,
            loaded=loaded,
            executor=executor_obj.describe(),
            quarantined=len(failures),
        ),
    )
    sweep_result = SweepResult(
        spec=spec,
        tasks=tasks,
        results=[result for result in results if result is not None],
        task_durations=durations,
        duration=sweep_duration,
        workers=executor_obj.workers,
        executor=executor_obj.describe(),
        executed=executed,
        loaded=loaded,
        failures=sorted(failures, key=lambda failure: failure.index),
    )
    if len(sweep_result.results) + len(failures) != total:  # pragma: no cover - defensive
        raise RuntimeError("sweep finished with missing task results")
    if jsonl_path is not None:
        sweep_result.write_jsonl(jsonl_path)
    return sweep_result
