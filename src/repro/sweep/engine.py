"""The sweep engine: expansion, resume, executor dispatch and aggregation.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` into its
ordered task list, skips every task whose content hash already has a result
in the (optional) :class:`~repro.sweep.store.ResultStore` — **resume** —
and hands the remaining tasks to a pluggable
:class:`~repro.sweep.executors.SweepExecutor` (``serial``, ``process-pool``,
``chunked-streaming``, or any registered/constructed executor).  Outcomes
are re-ordered by task index, so the final :class:`SweepResult` is
independent of executor choice, worker count, completion order and of how
many tasks were loaded versus executed.

Determinism: every task carries its own seed (derived in the spec, never
here), each worker builds its simulation from the task's plain-dict config,
and nothing about scheduling feeds back into the tasks — so any executor
produces byte-identical results, and a resumed sweep's merged result is
byte-identical to one uninterrupted run.

Progress streams through :class:`~repro.events.EventHooks`: ``task_started``
when the executor admits a task to its in-flight window (see
:mod:`repro.sweep.executors` for the per-executor ordering contract),
``task_finished`` when its result arrives (completion order),
``task_skipped`` + ``task_loaded`` for store hits (before any execution
starts, in task order) and ``sweep_end`` once at the end.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, List, Optional

from repro.errors import ConfigurationError
from repro.events import (
    SWEEP_END,
    TASK_FINISHED,
    TASK_LOADED,
    TASK_SKIPPED,
    TASK_STARTED,
    EventHooks,
    SweepEndEvent,
    TaskFinishedEvent,
    TaskLoadedEvent,
    TaskSkippedEvent,
    TaskStartedEvent,
)
from repro.session.result import RunResult
from repro.sweep.executors import (
    ExecutorContext,
    SweepExecutor,
    execute_task,
    resolve_executor,
)
from repro.sweep.result import SweepResult
from repro.sweep.spec import SweepSpec, SweepTask
from repro.sweep.store import ResultStore, task_hash

__all__ = ["run_sweep", "execute_task"]


def run_sweep(
    spec: SweepSpec,
    *,
    executor: Optional[Any] = None,
    workers: Optional[int] = None,
    hooks: Optional[EventHooks] = None,
    jsonl_path: Optional[str] = None,
    scenario_cache: bool = True,
    store: Optional[Any] = None,
    resume: bool = True,
    shm: Optional[bool] = None,
) -> SweepResult:
    """Run every task of *spec* and aggregate the results.

    Parameters
    ----------
    executor:
        How tasks execute: a registered executor name (``"serial"``,
        ``"process-pool"``, ``"chunked-streaming"``), a JSON-style spec
        (``{"name": "process-pool", "options": {"max_workers": 8}}``) or a
        :class:`~repro.sweep.executors.SweepExecutor` instance.  Default:
        the serial executor.  Results are identical for every executor.
    workers:
        Deprecated alias for ``executor``: ``1`` maps to ``serial``,
        ``N > 1`` to ``process-pool`` with ``N`` workers.  Mutually
        exclusive with ``executor``.
    hooks:
        Event hub receiving ``task_started`` / ``task_finished`` /
        ``task_skipped`` / ``task_loaded`` / ``sweep_end``; a private one is
        created when omitted.
    jsonl_path:
        When given, the finished sweep is persisted there as JSONL
        (see :meth:`~repro.sweep.result.SweepResult.write_jsonl`).
    scenario_cache:
        Memoise built scenarios per worker process (copy-on-write for
        mutating runners).  On by default; results do not depend on it.
    store:
        A :class:`~repro.sweep.store.ResultStore` (or its root path).  Every
        finished task is persisted under its content hash as it completes,
        and built scenario data is shared across workers and cold starts
        through the store's scenario tier.
    resume:
        With a store: skip every task whose content hash already has a
        stored result, loading it instead (default).  ``resume=False``
        re-executes everything (and refreshes the store).  The merged
        result is byte-identical either way.
    shm:
        Shared-memory scenario tier (:mod:`repro.sweep.shm`): the
        coordinator publishes each pending scenario's dense recall arrays
        once and workers attach read-only views instead of rebuilding them
        per process.  ``None`` (default) auto-enables for multi-process
        executors when the platform supports it; ``True`` forces it on
        (still skipped when unsupported); ``False`` disables it.  Results
        are byte-identical either way.
    """
    if workers is not None:
        warnings.warn(
            "run_sweep(workers=N) is deprecated; pass executor='process-pool' "
            "(or an executor spec with max_workers) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if workers < 1:
            raise ConfigurationError(f"workers must be at least 1, got {workers}")
    executor_obj: SweepExecutor = resolve_executor(executor, workers=workers)
    hooks = hooks if hooks is not None else EventHooks()
    result_store = ResultStore.from_any(store)
    tasks = spec.validate()
    total = len(tasks)
    sweep_started = time.perf_counter()
    results: List[Optional[RunResult]] = [None] * total
    durations: List[float] = [0.0] * total
    completed = 0
    loaded = 0

    # -- resume: load stored results, collect what is left to run ------------------
    pending: List[SweepTask]
    if result_store is not None and resume:
        pending = []
        for task in tasks:
            hash_hex = task_hash(task)
            stored = result_store.get(hash_hex)
            if stored is None:
                pending.append(task)
                continue
            results[task.index] = stored.result
            durations[task.index] = stored.duration
            completed += 1
            loaded += 1
            hooks.emit(
                TASK_SKIPPED,
                TaskSkippedEvent(
                    index=task.index, task=task, total=total, task_hash=hash_hex
                ),
            )
            hooks.emit(
                TASK_LOADED,
                TaskLoadedEvent(
                    index=task.index,
                    task=task,
                    result=stored.result,
                    total=total,
                    completed=completed,
                    task_hash=hash_hex,
                    duration=stored.duration,
                ),
            )
    else:
        pending = list(tasks)

    # -- execute what remains through the executor ---------------------------------
    def on_started(task: SweepTask) -> None:
        hooks.emit(TASK_STARTED, TaskStartedEvent(index=task.index, task=task, total=total))

    shm_server = None
    shm_manifest = None
    if pending and scenario_cache and shm is not False and executor_obj.workers > 1:
        from repro.sweep.shm import ScenarioArrayServer, shared_memory_available

        if shared_memory_available():
            shm_server = ScenarioArrayServer()
            shm_manifest = shm_server.publish_for_tasks(pending, store=result_store)
            if not shm_manifest:
                shm_server.close()
                shm_server = None
                shm_manifest = None

    context = ExecutorContext(
        scenario_cache=scenario_cache,
        store_path=str(result_store.root) if result_store is not None else None,
        on_started=on_started,
        shm_manifest=shm_manifest,
    )
    try:
        for task, result, duration in executor_obj.run(pending, context):
            results[task.index] = result
            durations[task.index] = duration
            completed += 1
            hooks.emit(
                TASK_FINISHED,
                TaskFinishedEvent(
                    index=task.index,
                    task=task,
                    result=result,
                    total=total,
                    completed=completed,
                    duration=duration,
                ),
            )
    finally:
        if shm_server is not None:
            shm_server.close()

    sweep_duration = time.perf_counter() - sweep_started
    executed = total - loaded
    hooks.emit(
        SWEEP_END,
        SweepEndEvent(
            total=total,
            duration=sweep_duration,
            workers=executor_obj.workers,
            executed=executed,
            loaded=loaded,
            executor=executor_obj.describe(),
        ),
    )
    sweep_result = SweepResult(
        spec=spec,
        tasks=tasks,
        results=[result for result in results if result is not None],
        task_durations=durations,
        duration=sweep_duration,
        workers=executor_obj.workers,
        executor=executor_obj.describe(),
        executed=executed,
        loaded=loaded,
    )
    if len(sweep_result.results) != total:  # pragma: no cover - defensive
        raise RuntimeError("sweep finished with missing task results")
    if jsonl_path is not None:
        sweep_result.write_jsonl(jsonl_path)
    return sweep_result
