"""Per-worker scenario memoisation for the sweep engine.

Sweep tasks that share a ``(scenario, ScenarioConfig)`` pair — every
strategy × initial × theta combination evaluated at the same seed — used to
rebuild identical :class:`~repro.datasets.scenarios.ScenarioData` from
scratch, corpus generation and all.  (Replications are *different* keys by
design: each replication's seed flows into ``ScenarioConfig.seed`` so it
genuinely resamples the world.)  This module keeps one built scenario per
distinct key in the worker process and hands it to each task:

* **non-mutating runners** (``discover`` and anything registered with
  ``mutates_scenario=False``) share the cached instance directly — a
  discovery run only *derives* models from the network, it never changes it;
* **mutating runners** (the maintenance family, and any runner that does not
  declare itself) receive a private :func:`copy.deepcopy`, so the pristine
  cache entry is never perturbed (copy-on-write).
  :class:`~repro.peers.network.PeerNetwork` drops its derived-model caches
  during the copy, so a copied-then-mutated scenario behaves exactly like a
  freshly built one.

Because the cached build is deterministic in the key, a cache hit and a cache
miss produce byte-identical task results — so sweeps stay reproducible for
any worker count, which the engine's parity tests assert with the cache on.

Set ``REPRO_SWEEP_SCENARIO_CACHE=0`` to disable the cache globally (every
task then rebuilds, the pre-cache behaviour).
"""

from __future__ import annotations

import copy
import os
from typing import Dict, Tuple

from repro.datasets.scenarios import ScenarioConfig, ScenarioData, build_scenario
from repro.registry import scenario_registry

__all__ = [
    "scenario_cache_enabled",
    "scenario_data_for",
    "clear_scenario_cache",
    "scenario_cache_info",
]

_CacheKey = Tuple[str, ScenarioConfig]

_CACHE: Dict[_CacheKey, ScenarioData] = {}
_STATS = {"hits": 0, "misses": 0, "copies": 0}

#: Environment switch disabling the cache ("0"/"false"/"no"/"off").
ENV_FLAG = "REPRO_SWEEP_SCENARIO_CACHE"


def scenario_cache_enabled() -> bool:
    """Whether the per-worker scenario cache is enabled (default: yes)."""
    return os.environ.get(ENV_FLAG, "1").strip().lower() not in {"0", "false", "no", "off"}


def runner_mutates_scenario(runner: object) -> bool:
    """Whether *runner* declares itself scenario-mutating (unknown = mutating)."""
    return bool(getattr(runner, "mutates_scenario", True))


def scenario_data_for(session_config, *, mutates: bool) -> ScenarioData:
    """The scenario data for *session_config*, memoised per worker process.

    Parameters
    ----------
    session_config:
        The task's :class:`~repro.session.config.SessionConfig`; the cache
        key is its canonical scenario name plus the fully resolved
        :class:`ScenarioConfig` (scale preset + overrides + seed), so two
        tasks share an entry exactly when they would build identical data.
    mutates:
        ``True`` returns a private deep copy (copy-on-write for runners that
        perturb the network); ``False`` returns the shared instance.
    """
    name = scenario_registry.canonical_name(session_config.scenario)
    key: _CacheKey = (name, session_config.experiment_config().scenario)
    data = _CACHE.get(key)
    if data is None:
        data = build_scenario(name, key[1])
        _CACHE[key] = data
        _STATS["misses"] += 1
    else:
        _STATS["hits"] += 1
    if mutates:
        _STATS["copies"] += 1
        return copy.deepcopy(data)
    return data


def clear_scenario_cache() -> None:
    """Drop every cached scenario and reset the hit/miss counters."""
    _CACHE.clear()
    for counter in _STATS:
        _STATS[counter] = 0


def scenario_cache_info() -> Dict[str, int]:
    """Cache statistics of this process: ``size``, ``hits``, ``misses``, ``copies``."""
    return {"size": len(_CACHE), **_STATS}


__all__.append("runner_mutates_scenario")
