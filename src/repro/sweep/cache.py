"""Per-worker scenario memoisation for the sweep engine.

Sweep tasks that share a ``(scenario, ScenarioConfig)`` pair — every
strategy × initial × theta combination evaluated at the same seed — used to
rebuild identical :class:`~repro.datasets.scenarios.ScenarioData` from
scratch, corpus generation and all.  (Replications are *different* keys by
design: each replication's seed flows into ``ScenarioConfig.seed`` so it
genuinely resamples the world.)  This module keeps one built scenario per
distinct key in the worker process and hands it to each task:

* **non-mutating runners** (``discover`` and anything registered with
  ``mutates_scenario=False``) share the cached instance directly — a
  discovery run only *derives* models from the network, it never changes it;
* **mutating runners** (the maintenance family, and any runner that does not
  declare itself) receive a private :func:`copy.deepcopy`, so the pristine
  cache entry is never perturbed (copy-on-write).
  :class:`~repro.peers.network.PeerNetwork` drops its derived-model caches
  during the copy, so a copied-then-mutated scenario behaves exactly like a
  freshly built one.

Because the cached build is deterministic in the key, a cache hit and a cache
miss produce byte-identical task results — so sweeps stay reproducible for
any worker count, which the engine's parity tests assert with the cache on.

When the sweep runs with a content-addressed store
(:class:`~repro.sweep.store.ResultStore`), this memo grows a second, on-disk
tier: a miss first consults the store's ``scenarios/`` directory (pickled
:class:`ScenarioData` keyed by the sha256 of the scenario name + resolved
config) before building, and every fresh build is persisted there — so
scenario construction is shared across worker processes, cold starts and CI
runs, not just within one worker's lifetime.

Set ``REPRO_SWEEP_SCENARIO_CACHE=0`` to disable the cache globally (every
task then rebuilds, the pre-cache behaviour; the store tier is skipped too).
"""

from __future__ import annotations

import copy
import os
from typing import Dict, Optional, Tuple

from repro.datasets.scenarios import ScenarioConfig, ScenarioData, build_scenario
from repro.registry import scenario_registry

__all__ = [
    "scenario_cache_enabled",
    "scenario_data_for",
    "clear_scenario_cache",
    "scenario_cache_info",
]

_CacheKey = Tuple[str, ScenarioConfig]

_CACHE: Dict[_CacheKey, ScenarioData] = {}
_STATS = {"hits": 0, "misses": 0, "copies": 0, "store_hits": 0}

#: Environment switch disabling the cache ("0"/"false"/"no"/"off").
ENV_FLAG = "REPRO_SWEEP_SCENARIO_CACHE"


def scenario_cache_enabled() -> bool:
    """Whether the per-worker scenario cache is enabled (default: yes)."""
    return os.environ.get(ENV_FLAG, "1").strip().lower() not in {"0", "false", "no", "off"}


def runner_mutates_scenario(runner: object) -> bool:
    """Whether *runner* declares itself scenario-mutating (unknown = mutating)."""
    return bool(getattr(runner, "mutates_scenario", True))


def scenario_data_for(
    session_config, *, mutates: bool, store: Optional[object] = None
) -> ScenarioData:
    """The scenario data for *session_config*, memoised per worker process.

    Parameters
    ----------
    session_config:
        The task's :class:`~repro.session.config.SessionConfig`; the cache
        key is its canonical scenario name plus the fully resolved
        :class:`ScenarioConfig` (scale preset + overrides + seed), so two
        tasks share an entry exactly when they would build identical data.
    mutates:
        ``True`` returns a private deep copy (copy-on-write for runners that
        perturb the network); ``False`` returns the shared instance.
    store:
        Optional :class:`~repro.sweep.store.ResultStore`: on an in-memory
        miss the store's scenario tier is consulted before building, and a
        fresh build is persisted back, sharing construction across workers
        and cold starts.  A loaded scenario is byte-equivalent to a rebuilt
        one (the pickle is taken cache-free), so results do not depend on
        which tier answered.
    """
    name = scenario_registry.canonical_name(session_config.scenario)
    key: _CacheKey = (name, session_config.experiment_config().scenario)
    data = _CACHE.get(key)
    if data is None:
        if store is not None:
            data = store.load_scenario(name, key[1])
        if data is not None:
            _STATS["store_hits"] += 1
        else:
            data = build_scenario(name, key[1])
            _STATS["misses"] += 1
            if store is not None:
                store.save_scenario(name, key[1], data)
        _CACHE[key] = data
    else:
        _STATS["hits"] += 1
    if mutates:
        _STATS["copies"] += 1
        return copy.deepcopy(data)
    return data


def clear_scenario_cache() -> None:
    """Drop every cached scenario and reset the hit/miss counters."""
    _CACHE.clear()
    for counter in _STATS:
        _STATS[counter] = 0


def scenario_cache_info() -> Dict[str, int]:
    """Cache statistics of this process: ``size``, ``hits``, ``misses``,
    ``copies`` and ``store_hits`` (misses answered by the on-disk tier)."""
    return {"size": len(_CACHE), **_STATS}


__all__.append("runner_mutates_scenario")
