"""Declarative configuration for a simulation session.

:class:`SessionConfig` is the single source of truth from which
:class:`~repro.session.simulation.Simulation` assembles every ingredient of a
run: scenario data, initial configuration, cost model (theta + alpha),
relocation strategy, query router and the reformulation protocol.  All
pluggable parts are referenced *by registry name*, so a config is a plain
bag of strings/numbers that round-trips through JSON (``from_dict`` /
``to_dict``) and can come from a CLI, a config file or code::

    SessionConfig(scenario="same_category", strategy="selfish", scale="quick")

Scale presets: ``scale`` names an :class:`~repro.experiments.config.ExperimentConfig`
preset (``quick``, ``benchmark``, ``paper``).  Fields such as ``alpha``,
``theta`` or ``max_rounds`` default to ``None`` meaning "whatever the preset
says"; setting them overrides the preset.  An existing ``ExperimentConfig``
can be wrapped directly with :meth:`SessionConfig.from_experiment_config`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional

from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, ScenarioConfig
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig

__all__ = ["SessionConfig"]


@dataclass(frozen=True)
class SessionConfig:
    """Everything needed to assemble and run one simulation session."""

    #: Registered scenario name (``same-category``/``same_category``, ...).
    scenario: str = SCENARIO_SAME_CATEGORY
    #: Registered relocation strategy name.
    strategy: str = "selfish"
    #: Scale preset name (``quick``/``benchmark``/``paper``); ``None`` = paper scale.
    scale: Optional[str] = None
    #: Registered initial-configuration kind (``singletons``, ``random``, ...).
    initial: str = "singletons"
    #: Explicit cluster count for the random initial configurations.
    num_clusters: Optional[int] = None
    #: Theta function name; ``None`` = the preset's (``linear`` by default).
    theta: Optional[str] = None
    theta_options: Dict[str, Any] = field(default_factory=dict)
    #: Membership-cost weight; ``None`` = the preset's.
    alpha: Optional[float] = None
    #: Discovery-run gain threshold ε; ``None`` = the preset's.
    gain_threshold: Optional[float] = None
    #: Maintenance gain threshold ε; ``None`` = the preset's (0.001).
    maintenance_gain_threshold: Optional[float] = None
    #: Protocol round budget; ``None`` = the preset's.
    max_rounds: Optional[int] = None
    #: Master seed; ``None`` = the preset's.
    seed: Optional[int] = None
    #: Strategy evaluation mode (``exact`` or ``observed``).
    strategy_mode: str = "exact"
    strategy_options: Dict[str, Any] = field(default_factory=dict)
    #: Registered query router name; ``None`` = broadcast when a router is needed.
    router: Optional[str] = None
    router_options: Dict[str, Any] = field(default_factory=dict)
    #: Declarative exogenous dynamics for maintenance runs: a
    #: :class:`~repro.dynamics.schedule.DynamicsSchedule` spec — one drift
    #: rule (``{"model": name, "options": {...}, "start": ..., "every": ...,
    #: "times": ..., "ramp": ...}``) or ``{"rules": [...]}``.  ``None`` = no
    #: drift.  Like every other field this is a plain bag of strings/numbers,
    #: so drifting sessions sweep and JSON-round-trip like static ones.
    dynamics: Optional[Dict[str, Any]] = None
    #: Declarative query-traffic settings for :meth:`Simulation.run_traffic`:
    #: a plain mapping of its keyword arguments (``workload``,
    #: ``workload_options``, ``num_events``, ``horizon``, ``link``,
    #: ``batch_size``, ``seed``).  ``None`` = the traffic defaults.  Kept as a
    #: plain bag so traffic runs sweep and JSON-round-trip like the rest.
    traffic: Optional[Dict[str, Any]] = None
    #: Field overrides applied to the preset's :class:`ScenarioConfig`.
    scenario_overrides: Dict[str, Any] = field(default_factory=dict)
    #: Best-response kernel backend (``dense``/``labels``/``auto``); ``None``
    #: = automatic selection by population size.  ``labels`` additionally
    #: switches the recall matrix to its factored representation so no
    #: |P| x |P| array is materialised — the large-population mode.
    kernel_backend: Optional[str] = None
    #: Kernel dtype (``float64``/``float32``); ``None`` = float64.  float32
    #: halves kernel memory at ~1e-3 relative cost accuracy.
    kernel_dtype: Optional[str] = None
    #: Discovery-run protocol knobs (the paper's Section 4.1 defaults).
    allow_cluster_creation: bool = True
    creation_cost_increase: float = 0.0
    restrict_to_nonempty: bool = False
    enforce_locks: bool = True
    #: Base experiment config taking the role of the scale preset when set.
    base: Optional[ExperimentConfig] = None

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_experiment_config(
        cls, config: ExperimentConfig, **overrides: Any
    ) -> "SessionConfig":
        """Wrap an existing :class:`ExperimentConfig` (plus session-level *overrides*)."""
        if not isinstance(config, ExperimentConfig):
            raise ConfigurationError(
                f"expected an ExperimentConfig, got {type(config).__name__}"
            )
        return cls(base=config, **overrides)

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "SessionConfig":
        """Build a config from a plain mapping (JSON/CLI use).

        Unknown keys raise :class:`~repro.errors.ConfigurationError` listing
        the valid field names.  A nested ``base`` mapping is materialised as
        an :class:`ExperimentConfig` (with its nested ``scenario``).
        """
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown session config keys {unknown}; valid keys: {sorted(known)}"
            )
        values = dict(mapping)
        base = values.get("base")
        if isinstance(base, Mapping):
            base_values = dict(base)
            scenario = base_values.get("scenario")
            if isinstance(scenario, Mapping):
                base_values["scenario"] = ScenarioConfig(**scenario)
            values["base"] = ExperimentConfig(**base_values)
        return cls(**values)

    @classmethod
    def from_any(cls, value: Any = None, **overrides: Any) -> "SessionConfig":
        """Coerce *value* (SessionConfig, mapping, ExperimentConfig or None) to a config."""
        if value is None:
            config = cls()
        elif isinstance(value, cls):
            config = value
        elif isinstance(value, ExperimentConfig):
            config = cls.from_experiment_config(value)
        elif isinstance(value, Mapping):
            config = cls.from_dict(value)
        else:
            raise ConfigurationError(
                "expected a SessionConfig, ExperimentConfig, mapping or None, "
                f"got {type(value).__name__}"
            )
        if overrides:
            config = config.with_options(**overrides)
        return config

    # -- derived views -----------------------------------------------------------

    def with_options(self, **overrides: Any) -> "SessionConfig":
        """A copy of this config with some fields replaced."""
        known = {spec.name for spec in fields(type(self))}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown session config keys {unknown}; valid keys: {sorted(known)}"
            )
        return replace(self, **overrides)

    def experiment_config(self) -> ExperimentConfig:
        """The resolved :class:`ExperimentConfig` (preset + explicit overrides)."""
        if self.base is not None:
            config = self.base
        elif self.scale is not None:
            config = ExperimentConfig.from_scale(self.scale)
        else:
            config = ExperimentConfig.paper()
        overrides: Dict[str, Any] = {}
        if self.alpha is not None:
            overrides["alpha"] = self.alpha
        if self.theta is not None:
            overrides["theta_name"] = self.theta
        if self.gain_threshold is not None:
            overrides["gain_threshold"] = self.gain_threshold
        if self.maintenance_gain_threshold is not None:
            overrides["maintenance_gain_threshold"] = self.maintenance_gain_threshold
        if self.max_rounds is not None:
            overrides["max_rounds"] = self.max_rounds
        if self.seed is not None:
            overrides["seed"] = self.seed
        if overrides:
            config = replace(config, **overrides)
        if self.scenario_overrides:
            config = config.with_scenario(**self.scenario_overrides)
        return config

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable mapping that round-trips through :meth:`from_dict`."""
        values = asdict(self)
        if self.base is None:
            values.pop("base")
        if self.traffic is None:
            values.pop("traffic")
        # Defaults stay out of the dict so configs hash/compare identically
        # across versions that did not know these keys.
        if self.kernel_backend is None:
            values.pop("kernel_backend")
        if self.kernel_dtype is None:
            values.pop("kernel_dtype")
        return values
