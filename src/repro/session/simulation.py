"""The :class:`Simulation` facade and its fluent :class:`SimulationBuilder`.

One composable entry point over the library's six moving parts (scenario,
initial configuration, cost model, strategy, router, protocol)::

    from repro import Simulation, SessionConfig

    result = Simulation.from_config(
        SessionConfig(scenario="same_category", strategy="selfish", scale="quick")
    ).run()
    print(result.converged, result.final_social_cost)

or, fluently::

    result = (
        Simulation.builder()
        .scenario("same-category")
        .strategy("selfish")
        .scale("quick")
        .build()
        .run()
    )

The facade assembles exactly what the hand-wired quickstart assembles — the
same builders, the same seeds — so a facade run reproduces the hand-wired
run result for result.  Components are materialised lazily (and can be
injected), so callers may perturb ``simulation.data.network`` before the
cost model is built, exactly like the maintenance experiments do.

Events: every simulation owns an :class:`~repro.events.EventHooks` that the
protocol and maintenance loop publish to; subscribe with
:meth:`Simulation.on_round_end`, :meth:`Simulation.on_relocation_granted`
and :meth:`Simulation.on_period_end`.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.metrics import cluster_purity
from repro.core.costs import CostModel
from repro.core.theta import ThetaFunction, theta_from_name
from repro.datasets.scenarios import ScenarioData, build_scenario, initial_configuration
from repro.dynamics.periodic import PeriodicMaintenanceLoop, UpdateCallback
from repro.dynamics.schedule import DynamicsSchedule
from repro.errors import ConfigurationError
from repro.events import EventHooks
from repro.overlay.routing import QueryRouter, build_router
from repro.overlay.simulator import OverlaySimulator
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.protocol.reformulation import ProtocolResult, ReformulationProtocol
from repro.session.config import SessionConfig
from repro.session.result import (
    KIND_DISCOVERY,
    KIND_MAINTENANCE,
    KIND_TRAFFIC,
    RunResult,
)
from repro.strategies import build_strategy
from repro.strategies.base import RelocationStrategy
from repro.traffic.report import TrafficReport
from repro.traffic.simulator import TrafficSimulator

__all__ = ["Simulation", "SimulationBuilder"]


class Simulation:
    """Facade assembling and driving one simulation session.

    Parameters
    ----------
    config:
        The declarative :class:`SessionConfig` (or anything
        :meth:`SessionConfig.from_any` accepts).
    data, configuration, strategy, hooks:
        Optional pre-built components; anything not injected is built lazily
        from *config*.  Injecting ``data`` lets several sessions share one
        (expensive) scenario build, as the experiment drivers do.
    """

    def __init__(
        self,
        config: Any = None,
        *,
        data: Optional[ScenarioData] = None,
        configuration: Optional[ClusterConfiguration] = None,
        strategy: Optional[RelocationStrategy] = None,
        hooks: Optional[EventHooks] = None,
        **overrides: Any,
    ) -> None:
        self.config = SessionConfig.from_any(config, **overrides)
        self.experiment_config = self.config.experiment_config()
        self.hooks = hooks if hooks is not None else EventHooks()
        self._data = data
        self._configuration = configuration
        self._strategy = strategy
        self._theta: Optional[ThetaFunction] = None
        self._cost_model: Optional[CostModel] = None
        #: The protocol instance of the most recent :meth:`run` call.
        self.last_protocol: Optional[ReformulationProtocol] = None
        #: The maintenance loop of the most recent :meth:`run_maintenance` call.
        self.last_loop: Optional[PeriodicMaintenanceLoop] = None
        #: The full report of the most recent :meth:`run_traffic` call.
        self.last_traffic_report: Optional[TrafficReport] = None

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_config(cls, config: Any = None, **overrides: Any) -> "Simulation":
        """Build a simulation from a :class:`SessionConfig`, mapping, ``ExperimentConfig`` or kwargs."""
        return cls(config, **overrides)

    @classmethod
    def builder(cls) -> "SimulationBuilder":
        """A fluent builder producing a :class:`Simulation`."""
        return SimulationBuilder()

    # -- assembled components ----------------------------------------------------

    @property
    def data(self) -> ScenarioData:
        """The scenario data (network + ground truth); built on first access."""
        if self._data is None:
            self._data = build_scenario(self.config.scenario, self.experiment_config.scenario)
        return self._data

    @property
    def network(self) -> PeerNetwork:
        """The scenario's peer network."""
        return self.data.network

    @property
    def configuration(self) -> ClusterConfiguration:
        """The (mutable) cluster configuration the protocol operates on."""
        if self._configuration is None:
            self._configuration = initial_configuration(
                self.data,
                self.config.initial,
                num_clusters=self.config.num_clusters,
                seed=self.experiment_config.seed + 13,
            )
        return self._configuration

    @property
    def theta(self) -> ThetaFunction:
        """The cluster membership cost function."""
        if self._theta is None:
            if self.config.theta_options:
                name = self.config.theta or self.experiment_config.theta_name
                self._theta = theta_from_name(name, **self.config.theta_options)
            else:
                self._theta = self.experiment_config.theta()
        return self._theta

    @property
    def strategy(self) -> RelocationStrategy:
        """The relocation strategy instance."""
        if self._strategy is None:
            self._strategy = build_strategy(
                self.config.strategy,
                mode=self.config.strategy_mode,
                **self.config.strategy_options,
            )
        return self._strategy

    @property
    def cost_model(self) -> CostModel:
        """The cost model over the network's current state (cached; see :meth:`invalidate`)."""
        if self._cost_model is None:
            # The labels kernel backend works off the factored recall
            # representation, so the |P| x |P| dense arrays are never built.
            matrix_mode = "factored" if self.config.kernel_backend == "labels" else None
            self._cost_model = self.network.cost_model(
                theta=self.theta,
                alpha=self.experiment_config.alpha,
                matrix_mode=matrix_mode,
            )
        return self._cost_model

    def router_factory(self) -> Optional[Callable[[PeerNetwork], QueryRouter]]:
        """Factory for the configured query router, or ``None`` for the default broadcast."""
        if self.config.router is None:
            return None
        name, options = self.config.router, dict(self.config.router_options)
        return lambda network: build_router(name, network, **options)

    def invalidate(self) -> None:
        """Drop the cached cost model after mutating the network (updates, churn)."""
        self._cost_model = None

    # -- event subscriptions -----------------------------------------------------

    def on_round_end(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Subscribe to round-end events; returns an unsubscribe function."""
        return self.hooks.on_round_end(callback)

    def on_relocation_granted(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Subscribe to granted-relocation events; returns an unsubscribe function."""
        return self.hooks.on_relocation_granted(callback)

    def on_period_end(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Subscribe to maintenance period-end events; returns an unsubscribe function."""
        return self.hooks.on_period_end(callback)

    def on_drift_applied(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Subscribe to applied-drift events; returns an unsubscribe function."""
        return self.hooks.on_drift_applied(callback)

    def on_query_routed(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Subscribe to traffic batch-routed events; returns an unsubscribe function."""
        return self.hooks.on_query_routed(callback)

    def on_traffic_summary(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Subscribe to traffic run-summary events; returns an unsubscribe function."""
        return self.hooks.on_traffic_summary(callback)

    # -- running -----------------------------------------------------------------

    def _purity(self) -> Optional[float]:
        categories = self.data.data_categories
        if not any(category is not None for category in categories.values()):
            return None
        return cluster_purity(self.configuration, categories)

    def _observe(self) -> Optional[OverlaySimulator]:
        """Run one observation period when the strategy needs observed statistics."""
        if getattr(self.strategy, "mode", "exact") != "observed":
            return None
        factory = self.router_factory()
        router = factory(self.network) if factory is not None else None
        simulator = OverlaySimulator(self.network, self.configuration, router=router)
        simulator.run_period()
        return simulator

    def run(self, *, max_rounds: Optional[int] = None) -> RunResult:
        """Run the reformulation protocol to quiescence (a discovery run).

        Continues from the session's current configuration, so consecutive
        calls model consecutive maintenance passes; use :meth:`run_maintenance`
        for the full periodic loop with observation and exogenous updates.
        """
        config = self.experiment_config
        simulator = self._observe()
        protocol = ReformulationProtocol(
            self.cost_model,
            self.configuration,
            self.strategy,
            gain_threshold=config.gain_threshold,
            allow_cluster_creation=self.config.allow_cluster_creation,
            creation_cost_increase=self.config.creation_cost_increase,
            restrict_to_nonempty=self.config.restrict_to_nonempty,
            enforce_locks=self.config.enforce_locks,
            hooks=self.hooks,
            kernel_backend=self.config.kernel_backend,
            kernel_dtype=self.config.kernel_dtype,
        )
        self.last_protocol = protocol
        statistics = simulator.statistics if simulator is not None else None
        result: ProtocolResult = protocol.run(
            max_rounds=max_rounds if max_rounds is not None else config.max_rounds,
            statistics=statistics,
        )
        queries_routed = 0
        if simulator is not None:
            queries_routed = sum(
                stats.recall_tracker.queries_observed()
                for stats in simulator.statistics.values()
            )
        return RunResult(
            kind=KIND_DISCOVERY,
            converged=result.converged and not result.cycle_detected,
            cycle_detected=result.cycle_detected,
            rounds=result.num_rounds,
            moves=result.total_moves,
            final_social_cost=result.final_social_cost,
            final_workload_cost=result.final_workload_cost,
            cluster_count=self.configuration.num_nonempty_clusters(),
            social_cost_trace=list(result.social_cost_trace),
            workload_cost_trace=list(result.workload_cost_trace),
            cluster_count_trace=list(result.cluster_count_trace),
            message_counts=dict(result.message_counts),
            purity=self._purity(),
            queries_routed=queries_routed,
            config=self.config.to_dict(),
            protocol_result=result,
        )

    def _resolve_schedule(
        self,
        periods: int,
        updates: Optional[List[Optional[UpdateCallback]]],
        dynamics: Any,
        schedule: Optional[DynamicsSchedule],
    ) -> Optional[DynamicsSchedule]:
        """The maintenance run's dynamics schedule, bound to this session.

        Precedence: an explicit *schedule* > a *dynamics* spec > the config's
        ``dynamics`` field.  Deprecated raw *updates* callbacks are adapted
        via :meth:`DynamicsSchedule.from_callbacks` and cannot be combined
        with declarative dynamics.
        """
        resolved = schedule
        if resolved is None:
            spec = dynamics if dynamics is not None else self.config.dynamics
            if spec is not None:
                resolved = DynamicsSchedule.from_any(spec)
        if updates is not None:
            warnings.warn(
                "run_maintenance(updates=[...]) is deprecated; declare the drift "
                "as registered models via SessionConfig(dynamics=...) or a "
                "DynamicsSchedule so it can be swept and serialised",
                DeprecationWarning,
                stacklevel=3,
            )
            if resolved is not None:
                raise ConfigurationError(
                    "updates callbacks cannot be combined with a dynamics schedule; "
                    "pass one or the other"
                )
            if len(updates) < periods:
                raise ValueError(
                    "updates must provide one (possibly None) entry per period"
                )
            resolved = DynamicsSchedule.from_callbacks(updates)
        if resolved is not None:
            resolved.bind(data=self.data, seed=self.experiment_config.seed)
        return resolved

    def run_maintenance(
        self,
        periods: int,
        *,
        updates: Optional[List[Optional[UpdateCallback]]] = None,
        dynamics: Any = None,
        schedule: Optional[DynamicsSchedule] = None,
        max_rounds_per_period: Optional[int] = None,
    ) -> RunResult:
        """Run *periods* of the periodic maintenance loop (Section 4.2 setting).

        Uses the paper's maintenance defaults — fixed cluster count
        (no creation, candidates restricted to non-empty clusters) and the
        maintenance gain threshold — independent of the discovery knobs.

        Exogenous change comes from the declarative dynamics layer: a
        *dynamics* spec (or the config's ``dynamics`` field) names registered
        drift models and when they fire; pass a pre-built
        :class:`~repro.dynamics.schedule.DynamicsSchedule` via *schedule* to
        share one across runs.  Every applied drift publishes a
        ``drift_applied`` event and is summarised in ``extras["drift"]``.
        ``updates[i]`` (deprecated) applies period *i*'s changes as a raw
        callback.
        """
        if periods < 0:
            raise ConfigurationError(f"periods must be non-negative, got {periods}")
        config = self.experiment_config
        resolved = self._resolve_schedule(periods, updates, dynamics, schedule)
        loop_kwargs: Dict[str, Any] = {}
        if max_rounds_per_period is not None:
            loop_kwargs["max_rounds_per_period"] = max_rounds_per_period
        loop = PeriodicMaintenanceLoop(
            self.network,
            self.configuration,
            self.strategy,
            alpha=config.alpha,
            theta=self.theta,
            gain_threshold=config.maintenance_gain_threshold,
            router_factory=self.router_factory(),
            hooks=self.hooks,
            schedule=resolved,
            kernel_backend=self.config.kernel_backend,
            kernel_dtype=self.config.kernel_dtype,
            **loop_kwargs,
        )
        self.last_loop = loop
        cluster_counts: List[int] = []
        drift_reports: List[Any] = []
        unsubscribers = [
            self.hooks.on_period_end(
                lambda _event: cluster_counts.append(
                    self.configuration.num_nonempty_clusters()
                )
            )
        ]
        if resolved is not None:
            unsubscribers.append(
                self.hooks.on_drift_applied(
                    lambda event: drift_reports.append(event.report)
                )
            )
        try:
            records = loop.run(periods)
        finally:
            for unsubscribe in unsubscribers:
                unsubscribe()
        self.invalidate()  # the loop's drift may have mutated the network
        final_social = records[-1].social_cost_after if records else float("nan")
        final_workload = records[-1].workload_cost_after if records else float("nan")
        result = RunResult(
            kind=KIND_MAINTENANCE,
            converged=all(record.converged for record in records) if records else True,
            rounds=sum(record.rounds for record in records),
            moves=sum(record.moves for record in records),
            final_social_cost=final_social,
            final_workload_cost=final_workload,
            cluster_count=self.configuration.num_nonempty_clusters(),
            social_cost_trace=[record.social_cost_after for record in records],
            workload_cost_trace=[record.workload_cost_after for record in records],
            cluster_count_trace=cluster_counts,
            message_counts=loop.bus.snapshot(),
            purity=self._purity(),
            periods=records,
            queries_routed=sum(record.queries_routed for record in records),
            config=self.config.to_dict(),
        )
        if resolved is not None:
            result.extras["drift"] = [report.to_dict() for report in drift_reports]
        return result

    def run_traffic(self, **overrides: Any) -> RunResult:
        """Serve a query workload against the session's current configuration.

        Replays an event stream through the
        :class:`~repro.traffic.simulator.TrafficSimulator` — typically after
        :meth:`run` or :meth:`run_maintenance` has shaped the clustering —
        and reports what the overlay delivered: latency, hops, bandwidth and
        recall distributions plus message totals.

        Settings come from the config's ``traffic`` mapping, overridden by
        keyword arguments: ``workload`` (registered generator name, default
        ``uniform``), ``workload_options``, ``num_events``, ``horizon``,
        ``link`` (a :class:`~repro.traffic.link.LinkModel` or mapping),
        ``batch_size``, ``keep_log`` and ``seed`` (defaults to the session
        seed, so traffic replays are as reproducible as everything else).
        The run uses the session's configured router (broadcast by default).

        The returned :class:`RunResult` has ``kind="traffic"``; the report's
        flat scalars (``latency_p50``, ``bandwidth_p99``, ...) land in
        ``extras`` so they work directly as sweep metrics, and the full
        :class:`~repro.traffic.report.TrafficReport` is kept on
        :attr:`last_traffic_report`.
        """
        settings: Dict[str, Any] = dict(self.config.traffic or {})
        settings.update(overrides)
        if "num_queries" in settings:  # accepted alias
            settings.setdefault("num_events", settings.pop("num_queries"))
        unknown = sorted(
            set(settings)
            - {
                "workload",
                "workload_options",
                "num_events",
                "horizon",
                "link",
                "batch_size",
                "keep_log",
                "seed",
            }
        )
        if unknown:
            raise ConfigurationError(
                f"unknown traffic settings {unknown}; valid keys: "
                "['batch_size', 'horizon', 'keep_log', 'link', 'num_events', "
                "'seed', 'workload', 'workload_options']"
            )
        factory = self.router_factory()
        simulator = TrafficSimulator(
            self.network,
            self.configuration,
            router=factory(self.network) if factory is not None else None,
            link=settings.get("link"),
            hooks=self.hooks,
            batch_size=int(settings.get("batch_size", 8192)),
            keep_log=bool(settings.get("keep_log", False)),
        )
        seed = settings.get("seed")
        if seed is None:
            seed = self.experiment_config.seed + 29  # distinct traffic stream
        report = simulator.run(
            num_events=int(settings.get("num_events", 10_000)),
            workload=settings.get("workload", "uniform"),
            workload_options=settings.get("workload_options"),
            seed=int(seed),
            horizon=float(settings.get("horizon", 1.0)),
        )
        self.last_traffic_report = report
        result = RunResult(
            kind=KIND_TRAFFIC,
            converged=True,
            cluster_count=self.configuration.num_nonempty_clusters(),
            message_counts=report.message_counts,
            purity=self._purity(),
            queries_routed=report.events,
            config=self.config.to_dict(),
        )
        result.extras.update(report.flat_metrics())
        result.extras["traffic"] = report.to_dict()
        return result

    def __repr__(self) -> str:
        return (
            f"Simulation(scenario={self.config.scenario!r}, "
            f"strategy={self.config.strategy!r}, initial={self.config.initial!r})"
        )


class SimulationBuilder:
    """Fluent construction of a :class:`Simulation`.

    Every setter returns the builder; :meth:`build` materialises the
    simulation, :meth:`config` just the :class:`SessionConfig`.
    """

    def __init__(self) -> None:
        self._values: Dict[str, Any] = {}
        self._data: Optional[ScenarioData] = None
        self._configuration: Optional[ClusterConfiguration] = None
        self._strategy_instance: Optional[RelocationStrategy] = None
        self._hooks: Optional[EventHooks] = None
        self._subscriptions: List[Any] = []  # (event-registrar name, callback)

    # -- component selection -----------------------------------------------------

    def scenario(self, name: str, **overrides: Any) -> "SimulationBuilder":
        """Select the scenario by registered name (plus ``ScenarioConfig`` overrides)."""
        self._values["scenario"] = name
        if overrides:
            merged = dict(self._values.get("scenario_overrides", {}))
            merged.update(overrides)
            self._values["scenario_overrides"] = merged
        return self

    def strategy(self, strategy: Any, **options: Any) -> "SimulationBuilder":
        """Select the relocation strategy by registered name or pass an instance.

        A later call replaces the earlier selection entirely; constructor
        *options* only make sense with a name (an instance is already built).
        """
        if isinstance(strategy, RelocationStrategy):
            if options:
                raise ConfigurationError(
                    "strategy options cannot be combined with a strategy instance; "
                    "configure the instance directly or pass the strategy by name"
                )
            self._strategy_instance = strategy
            self._values["strategy"] = getattr(strategy, "name", type(strategy).__name__)
            self._values.pop("strategy_options", None)
        else:
            self._strategy_instance = None
            self._values["strategy"] = strategy
            if options:
                self._values["strategy_options"] = dict(options)
            else:
                self._values.pop("strategy_options", None)
        return self

    def scale(self, name: str) -> "SimulationBuilder":
        """Select the experiment scale preset (``quick``/``benchmark``/``paper``)."""
        self._values["scale"] = name
        return self

    def initial(self, kind: str, *, num_clusters: Optional[int] = None) -> "SimulationBuilder":
        """Select the initial configuration kind (and an explicit cluster count)."""
        self._values["initial"] = kind
        if num_clusters is not None:
            self._values["num_clusters"] = num_clusters
        return self

    def theta(self, name: str, **options: Any) -> "SimulationBuilder":
        """Select the theta (membership cost) function by registered name."""
        self._values["theta"] = name
        if options:
            self._values["theta_options"] = dict(options)
        return self

    def router(self, name: str, **options: Any) -> "SimulationBuilder":
        """Select the query router by registered name (e.g. ``probe-k`` with ``k=3``)."""
        self._values["router"] = name
        if options:
            self._values["router_options"] = dict(options)
        return self

    def dynamics(self, spec: Any) -> "SimulationBuilder":
        """Declare the maintenance-run dynamics (a drift schedule spec or schedule)."""
        if isinstance(spec, DynamicsSchedule):
            spec = spec.to_dict()
        self._values["dynamics"] = dict(spec)
        return self

    def traffic(self, workload: Optional[str] = None, **settings: Any) -> "SimulationBuilder":
        """Declare the query-traffic settings for :meth:`Simulation.run_traffic`.

        Example: ``.traffic("zipf", num_events=100_000, link={"hop_latency_ms": 2})``.
        """
        merged = dict(self._values.get("traffic", {}))
        if workload is not None:
            merged["workload"] = workload
        merged.update(settings)
        self._values["traffic"] = merged
        return self

    # -- scalar knobs ------------------------------------------------------------

    def alpha(self, value: float) -> "SimulationBuilder":
        """Set the membership-cost weight ``alpha``."""
        self._values["alpha"] = value
        return self

    def gain_threshold(self, value: float) -> "SimulationBuilder":
        """Set the discovery-run gain threshold ε."""
        self._values["gain_threshold"] = value
        return self

    def maintenance_gain_threshold(self, value: float) -> "SimulationBuilder":
        """Set the maintenance gain threshold ε."""
        self._values["maintenance_gain_threshold"] = value
        return self

    def max_rounds(self, value: int) -> "SimulationBuilder":
        """Set the protocol round budget."""
        self._values["max_rounds"] = value
        return self

    def seed(self, value: int) -> "SimulationBuilder":
        """Set the master seed."""
        self._values["seed"] = value
        return self

    def strategy_mode(self, mode: str) -> "SimulationBuilder":
        """Set the strategy evaluation mode (``exact`` or ``observed``)."""
        self._values["strategy_mode"] = mode
        return self

    def kernel(
        self, backend: Optional[str] = None, *, dtype: Optional[str] = None
    ) -> "SimulationBuilder":
        """Select the best-response kernel backend and dtype.

        ``backend="labels"`` is the large-population mode (label-vector
        membership over the factored recall representation); ``dtype="float32"``
        halves kernel memory at relaxed (~1e-3 relative) cost accuracy.
        """
        if backend is not None:
            self._values["kernel_backend"] = backend
        if dtype is not None:
            self._values["kernel_dtype"] = dtype
        return self

    def protocol_options(
        self,
        *,
        allow_cluster_creation: Optional[bool] = None,
        creation_cost_increase: Optional[float] = None,
        restrict_to_nonempty: Optional[bool] = None,
        enforce_locks: Optional[bool] = None,
    ) -> "SimulationBuilder":
        """Set the discovery-run protocol knobs."""
        for key, value in (
            ("allow_cluster_creation", allow_cluster_creation),
            ("creation_cost_increase", creation_cost_increase),
            ("restrict_to_nonempty", restrict_to_nonempty),
            ("enforce_locks", enforce_locks),
        ):
            if value is not None:
                self._values[key] = value
        return self

    # -- injection and observers -------------------------------------------------

    def with_data(self, data: ScenarioData) -> "SimulationBuilder":
        """Inject pre-built scenario data (shared across sessions)."""
        self._data = data
        return self

    def with_configuration(self, configuration: ClusterConfiguration) -> "SimulationBuilder":
        """Inject a pre-built initial cluster configuration."""
        self._configuration = configuration
        return self

    def hooks(self, hooks: EventHooks) -> "SimulationBuilder":
        """Use an existing event hub instead of a fresh one."""
        self._hooks = hooks
        return self

    def on_round_end(self, callback: Callable[[Any], None]) -> "SimulationBuilder":
        """Subscribe *callback* to round-end events of the built simulation."""
        self._subscriptions.append(("on_round_end", callback))
        return self

    def on_relocation_granted(self, callback: Callable[[Any], None]) -> "SimulationBuilder":
        """Subscribe *callback* to granted-relocation events of the built simulation."""
        self._subscriptions.append(("on_relocation_granted", callback))
        return self

    def on_period_end(self, callback: Callable[[Any], None]) -> "SimulationBuilder":
        """Subscribe *callback* to period-end events of the built simulation."""
        self._subscriptions.append(("on_period_end", callback))
        return self

    def on_query_routed(self, callback: Callable[[Any], None]) -> "SimulationBuilder":
        """Subscribe *callback* to traffic batch-routed events of the built simulation."""
        self._subscriptions.append(("on_query_routed", callback))
        return self

    def on_traffic_summary(self, callback: Callable[[Any], None]) -> "SimulationBuilder":
        """Subscribe *callback* to traffic run-summary events of the built simulation."""
        self._subscriptions.append(("on_traffic_summary", callback))
        return self

    # -- materialisation ---------------------------------------------------------

    def config(self) -> SessionConfig:
        """The :class:`SessionConfig` the builder currently describes."""
        return SessionConfig(**self._values)

    def build(self) -> Simulation:
        """Assemble the :class:`Simulation`."""
        simulation = Simulation(
            self.config(),
            data=self._data,
            configuration=self._configuration,
            strategy=self._strategy_instance,
            hooks=self._hooks,
        )
        for registrar, callback in self._subscriptions:
            getattr(simulation, registrar)(callback)
        return simulation
