"""Unified session API: one entry point assembling a whole simulation.

* :class:`~repro.session.config.SessionConfig` — declarative description of
  a run (every component referenced by registry name; JSON round-trippable).
* :class:`~repro.session.simulation.Simulation` — the facade that assembles
  scenario, initial configuration, cost model, strategy, router and protocol
  from a config and drives discovery runs and maintenance periods.
* :class:`~repro.session.simulation.SimulationBuilder` — fluent construction.
* :class:`~repro.session.result.RunResult` — unified, JSON-exportable result.

Importing this package registers the built-in components (strategies,
baselines, thetas, scenarios, routers, initializers).
"""

import repro.baselines  # noqa: F401  (registers the baseline strategies)
from repro.session.config import SessionConfig
from repro.session.result import RunResult
from repro.session.simulation import Simulation, SimulationBuilder

__all__ = ["SessionConfig", "Simulation", "SimulationBuilder", "RunResult"]
