"""Unified result object for simulation sessions.

:class:`RunResult` normalises the outcome of a discovery run (one
reformulation protocol execution), a maintenance run (several periods of the
periodic loop), a traffic run (a query-event replay over the clustered
overlay; its latency/hops/bandwidth/recall scalars land in ``extras``) or
any mix, into one structure with a JSON-safe :meth:`RunResult.to_dict` — the
shape the CLI, experiment reports and external tooling consume.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional

from repro.dynamics.periodic import PeriodRecord
from repro.errors import ConfigurationError
from repro.protocol.reformulation import ProtocolResult

__all__ = ["RunResult"]

#: ``RunResult.kind`` values.
KIND_DISCOVERY = "discovery"
KIND_MAINTENANCE = "maintenance"
KIND_TRAFFIC = "traffic"


@dataclass
class RunResult:
    """What a session run produced, independent of how it was driven.

    For discovery runs the traces are per protocol round; for maintenance
    runs they are per period (the cost after each period's maintenance pass).
    ``protocol_result`` keeps the raw low-level result for callers that need
    round-by-round detail; it is deliberately excluded from :meth:`to_dict`.
    """

    kind: str
    converged: bool
    cycle_detected: bool = False
    rounds: int = 0
    moves: int = 0
    final_social_cost: float = float("nan")
    final_workload_cost: float = float("nan")
    cluster_count: int = 0
    social_cost_trace: List[float] = field(default_factory=list)
    workload_cost_trace: List[float] = field(default_factory=list)
    cluster_count_trace: List[int] = field(default_factory=list)
    message_counts: Dict[str, int] = field(default_factory=dict)
    #: Ground-truth cluster purity, when the scenario has data categories.
    purity: Optional[float] = None
    #: Per-period records for maintenance runs (empty for discovery runs).
    periods: List[PeriodRecord] = field(default_factory=list)
    #: Queries routed over the overlay during observation periods.
    queries_routed: int = 0
    #: The session config the run was assembled from, as a plain dict.
    config: Dict[str, Any] = field(default_factory=dict)
    #: Runner-specific scalars (JSON-safe): sweep runners stash per-task
    #: measurements here (e.g. the pre-maintenance social cost, or a single
    #: peer's individual cost) so they survive process boundaries and JSONL.
    extras: Dict[str, Any] = field(default_factory=dict)
    #: Raw protocol result of the (last) protocol run; not serialised.
    protocol_result: Optional[ProtocolResult] = None

    @property
    def num_periods(self) -> int:
        """Number of completed maintenance periods."""
        return len(self.periods)

    @property
    def improvement(self) -> float:
        """Drop of the normalised social cost from the first to the last trace entry."""
        if len(self.social_cost_trace) < 2:
            return 0.0
        return self.social_cost_trace[0] - self.social_cost_trace[-1]

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable summary of the run."""
        return {
            "kind": self.kind,
            "converged": self.converged,
            "cycle_detected": self.cycle_detected,
            "rounds": self.rounds,
            "moves": self.moves,
            "final_social_cost": self.final_social_cost,
            "final_workload_cost": self.final_workload_cost,
            "cluster_count": self.cluster_count,
            "social_cost_trace": list(self.social_cost_trace),
            "workload_cost_trace": list(self.workload_cost_trace),
            "cluster_count_trace": list(self.cluster_count_trace),
            "message_counts": dict(self.message_counts),
            "purity": self.purity,
            "periods": [asdict(record) for record in self.periods],
            "queries_routed": self.queries_routed,
            "config": dict(self.config),
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from its :meth:`to_dict` form.

        The inverse of :meth:`to_dict` up to the deliberately unserialised
        ``protocol_result`` (always ``None`` on the rebuilt object):
        ``RunResult.from_dict(r.to_dict()).to_dict() == r.to_dict()`` holds
        exactly, which is what lets the sweep result store hand back results
        byte-identical to a fresh run.  Unknown keys raise
        :class:`~repro.errors.ConfigurationError` listing the valid fields.
        """
        known = {spec.name for spec in fields(cls)} - {"protocol_result"}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown run result keys {unknown}; valid keys: {sorted(known)}"
            )
        values = dict(mapping)
        values["periods"] = [
            PeriodRecord(**dict(record)) for record in values.get("periods", ())
        ]
        return cls(**values)

    def merge_prior(self, prior: "RunResult") -> "RunResult":
        """Graft an earlier phase's convergence/cost outcome onto this result.

        Used by two-phase runners (e.g. the ``traffic`` runner's optional
        ``discover``/``maintain`` shaping phase): this result keeps its own
        ``kind`` and measurements, but takes *prior*'s convergence flags,
        round/move counts, final costs and cost traces, and adopts every
        *prior* extra whose key this result does not already define (its own
        extras win).  Returns ``self`` for chaining.
        """
        self.converged = prior.converged
        self.cycle_detected = prior.cycle_detected
        self.rounds = prior.rounds
        self.moves = prior.moves
        self.final_social_cost = prior.final_social_cost
        self.final_workload_cost = prior.final_workload_cost
        self.social_cost_trace = list(prior.social_cost_trace)
        self.workload_cost_trace = list(prior.workload_cost_trace)
        self.cluster_count_trace = list(prior.cluster_count_trace)
        self.extras.update(
            {key: value for key, value in prior.extras.items() if key not in self.extras}
        )
        return self

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """The :meth:`to_dict` summary rendered as JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        return (
            f"RunResult(kind={self.kind!r}, converged={self.converged}, "
            f"rounds={self.rounds}, moves={self.moves}, "
            f"social_cost={self.final_social_cost:.3f}, clusters={self.cluster_count})"
        )
