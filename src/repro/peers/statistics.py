"""Per-peer observed statistics gathered during a period ``T``.

The relocation strategies of the paper are driven by *observed* quantities,
not by global knowledge:

* Every query result returned to a peer is annotated with the ``cid`` of the
  cluster that provided it.  Over a period ``T`` the peer can therefore track,
  per cluster, how much recall each cluster yields for its workload — this is
  what the **selfish** strategy needs (:class:`ClusterRecallTracker`).
* Symmetrically, a peer can track how many results it *serves* to queries
  coming from each cluster — the **altruistic** strategy's ``contribution``
  measure (:class:`ContributionTracker`).

The trackers are deliberately oblivious to how results were routed; the
overlay simulator feeds them, and the strategies read them.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Dict, Optional

from repro.core.queries import Query

__all__ = ["ClusterRecallTracker", "ContributionTracker", "PeerStatistics"]

PeerId = Hashable
ClusterId = Hashable


class ClusterRecallTracker:
    """Tracks, for one peer, the results its queries received from each cluster."""

    def __init__(self) -> None:
        self._results_per_cluster: Dict[ClusterId, int] = {}
        self._results_per_query_cluster: Dict[Query, Dict[ClusterId, int]] = {}
        self._total_results: int = 0
        self._queries_observed: int = 0

    def record(self, query: Query, cluster_id: ClusterId, result_count: int) -> None:
        """Record that *result_count* results for *query* arrived annotated with *cluster_id*."""
        if result_count < 0:
            raise ValueError(f"result_count must be non-negative, got {result_count}")
        self._results_per_cluster[cluster_id] = (
            self._results_per_cluster.get(cluster_id, 0) + result_count
        )
        per_query = self._results_per_query_cluster.setdefault(query, {})
        per_query[cluster_id] = per_query.get(cluster_id, 0) + result_count
        self._total_results += result_count

    def record_query(self) -> None:
        """Note that one query of the local workload was evaluated during the period."""
        self._queries_observed += 1

    def cluster_recall(self, query: Query, cluster_id: ClusterId) -> float:
        """Observed *cluster recall*: fraction of the results of *query* that came from *cluster_id*."""
        per_query = self._results_per_query_cluster.get(query)
        if not per_query:
            return 0.0
        total = sum(per_query.values())
        if total == 0:
            return 0.0
        return per_query.get(cluster_id, 0) / total

    def observed_recall_by_cluster(self) -> Dict[ClusterId, float]:
        """Fraction of all observed results contributed by each cluster."""
        if self._total_results == 0:
            return {}
        return {
            cluster_id: count / self._total_results
            for cluster_id, count in self._results_per_cluster.items()
        }

    def observed_clusters(self) -> Iterable[ClusterId]:
        """Clusters that returned at least one result during the period."""
        return sorted(self._results_per_cluster, key=repr)

    def total_results(self) -> int:
        """Total number of results observed during the period."""
        return self._total_results

    def queries_observed(self) -> int:
        """Number of local queries evaluated during the period."""
        return self._queries_observed

    def reset(self) -> None:
        """Clear the period's observations (called when a new period ``T`` starts)."""
        self._results_per_cluster.clear()
        self._results_per_query_cluster.clear()
        self._total_results = 0
        self._queries_observed = 0

    def __repr__(self) -> str:
        return (
            f"ClusterRecallTracker(clusters={len(self._results_per_cluster)}, "
            f"results={self._total_results})"
        )


class ContributionTracker:
    """Tracks, for one peer, the results it served to queries from each cluster.

    ``contribution(p, c_i)`` (Eq. 6) is the fraction of all results served by
    ``p`` during the period that went to queries issued by members of
    cluster ``c_i``.
    """

    def __init__(self) -> None:
        self._served_per_cluster: Dict[ClusterId, int] = {}
        self._total_served: int = 0

    def record_served(self, requesting_cluster: ClusterId, result_count: int) -> None:
        """Record *result_count* results served to a query issued from *requesting_cluster*."""
        if result_count < 0:
            raise ValueError(f"result_count must be non-negative, got {result_count}")
        self._served_per_cluster[requesting_cluster] = (
            self._served_per_cluster.get(requesting_cluster, 0) + result_count
        )
        self._total_served += result_count

    def contribution(self, cluster_id: ClusterId) -> float:
        """``contribution(p, c_i)``: share of served results that went to *cluster_id*."""
        if self._total_served == 0:
            return 0.0
        return self._served_per_cluster.get(cluster_id, 0) / self._total_served

    def contributions(self) -> Dict[ClusterId, float]:
        """Contribution to every cluster observed during the period."""
        if self._total_served == 0:
            return {}
        return {
            cluster_id: count / self._total_served
            for cluster_id, count in self._served_per_cluster.items()
        }

    def best_cluster(self) -> Optional[ClusterId]:
        """The cluster with the highest contribution (ties broken deterministically)."""
        if not self._served_per_cluster:
            return None
        return max(
            sorted(self._served_per_cluster, key=repr),
            key=lambda cluster_id: self._served_per_cluster[cluster_id],
        )

    def total_served(self) -> int:
        """Total number of results served during the period."""
        return self._total_served

    def reset(self) -> None:
        """Clear the period's observations."""
        self._served_per_cluster.clear()
        self._total_served = 0

    def __repr__(self) -> str:
        return (
            f"ContributionTracker(clusters={len(self._served_per_cluster)}, "
            f"served={self._total_served})"
        )


class PeerStatistics:
    """Bundle of the two per-peer trackers, keyed by peer in the overlay simulator."""

    def __init__(self) -> None:
        self.recall_tracker = ClusterRecallTracker()
        self.contribution_tracker = ContributionTracker()

    def reset(self) -> None:
        """Start a fresh observation period ``T``."""
        self.recall_tracker.reset()
        self.contribution_tracker.reset()

    def __repr__(self) -> str:
        return f"PeerStatistics({self.recall_tracker!r}, {self.contribution_tracker!r})"
