"""Peer substrate: peers, clusters, configurations, networks and statistics."""

from repro.peers.cluster import Cluster
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork
from repro.peers.peer import Peer
from repro.peers.statistics import ClusterRecallTracker, ContributionTracker, PeerStatistics

__all__ = [
    "Peer",
    "Cluster",
    "ClusterConfiguration",
    "PeerNetwork",
    "PeerStatistics",
    "ClusterRecallTracker",
    "ContributionTracker",
]
