"""The peer: an autonomous node holding content and issuing queries.

A peer owns

* a :class:`~repro.core.documents.DocumentCollection` (the data it shares),
* an :class:`~repro.core.index.InvertedIndex` over that collection (kept in
  sync automatically), and
* a :class:`~repro.core.queries.QueryWorkload` (the queries it issues,
  ``Q(p)`` in the paper).

Content and workload are mutable because the paper's Section 4.2 studies
exactly those updates; every mutating method bumps a ``version`` counter so
higher layers (the network's recall model, the weighted recall matrices) know
when cached derived state must be rebuilt.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Optional

from repro.core.documents import Document, DocumentCollection
from repro.core.index import InvertedIndex
from repro.core.queries import Query, QueryWorkload

__all__ = ["Peer"]

PeerId = Hashable


class Peer:
    """An autonomous peer with shared content and a local query workload."""

    def __init__(
        self,
        peer_id: PeerId,
        documents: Optional[Iterable[Document]] = None,
        workload: Optional[QueryWorkload] = None,
    ) -> None:
        self.peer_id = peer_id
        self.documents = DocumentCollection(documents)
        self.index = InvertedIndex(self.documents)
        self.workload = workload.copy() if workload is not None else QueryWorkload()
        self.version = 0

    # -- content management --------------------------------------------------

    def add_document(self, document: Document) -> None:
        """Add a single document to the peer's shared content."""
        self.documents.add(document)
        self.index.add(document)
        self.version += 1

    def replace_documents(self, documents: Iterable[Document]) -> None:
        """Replace the peer's content wholesale (a content update)."""
        self.documents.replace(list(documents))
        self.index.rebuild(self.documents)
        self.version += 1

    def replace_document_fraction(self, fraction: float, replacements: Iterable[Document]) -> None:
        """Replace ``fraction`` of the content with *replacements*.

        Used by the partial content-update scenario of Section 4.2(b).
        """
        self.documents.remove_fraction(fraction)
        self.documents.extend(replacements)
        self.index.rebuild(self.documents)
        self.version += 1

    def result_count(self, query: Query) -> int:
        """``result(q, p)`` for this peer."""
        return self.index.result_count(query)

    # -- workload management ---------------------------------------------------

    def issue_query(self, query: Query, count: int = 1) -> None:
        """Record *count* occurrences of *query* in the local workload."""
        self.workload.add(query, count)
        self.version += 1

    def replace_workload(self, workload: QueryWorkload) -> None:
        """Replace the local workload wholesale (a workload update)."""
        self.workload = workload.copy()
        self.version += 1

    def replace_workload_fraction(self, fraction: float, replacement: QueryWorkload) -> None:
        """Replace ``fraction`` of the local workload volume with *replacement*.

        Used by the partial workload-update scenario of Section 4.2(b): the
        removed volume is redistributed over the replacement queries so the
        workload volume stays (approximately) constant.
        """
        removed = self.workload.remove_fraction(fraction)
        removed_volume = removed.total()
        replacement_queries = replacement.distinct()
        if removed_volume and replacement_queries:
            per_query, leftover = divmod(removed_volume, len(replacement_queries))
            for position, query in enumerate(replacement_queries):
                count = per_query + (1 if position < leftover else 0)
                if count:
                    self.workload.add(query, count)
        self.version += 1

    # -- introspection -----------------------------------------------------------

    def dominant_category(self) -> Optional[str]:
        """The most common ground-truth category among the peer's documents.

        Only used by the analysis layer (cluster purity); the algorithms never
        look at categories.
        """
        categories = self.documents.categories()
        if not categories:
            return None
        counts: dict = {}
        for category in categories:
            counts[category] = counts.get(category, 0) + 1
        return max(sorted(counts), key=lambda category: counts[category])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Peer):
            return NotImplemented
        return self.peer_id == other.peer_id

    def __hash__(self) -> int:
        return hash(self.peer_id)

    def __repr__(self) -> str:
        return (
            f"Peer(peer_id={self.peer_id!r}, documents={len(self.documents)}, "
            f"workload={self.workload.total()})"
        )
