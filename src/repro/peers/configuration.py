"""Cluster configurations: the strategy profile ``S`` of the game.

A configuration records which peers belong to which clusters.  It is the
object the cost model evaluates (it implements the read-only interface
documented in :mod:`repro.core.costs`) and the object the reformulation
protocol mutates when it grants relocation requests.

The paper allows a peer to join several clusters (its strategy is a *set* of
clusters) but focuses on single-cluster membership for the protocol and the
experiments; the configuration supports both.  The maximum number of clusters
``Cmax`` equals the number of peers, so the configuration always exposes
``Cmax`` cluster slots — unassigned slots are simply empty clusters, which is
exactly what the cluster-creation rule of Section 3.2 needs.
"""

from __future__ import annotations

import weakref
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError, UnknownClusterError, UnknownPeerError
from repro.peers.cluster import Cluster

__all__ = ["ClusterConfiguration"]

PeerId = Hashable
ClusterId = Hashable


class ClusterConfiguration:
    """Mutable mapping between peers and clusters (the strategy profile ``S``).

    Parameters
    ----------
    cluster_ids:
        The identifiers of all cluster slots in the system (``Cmax`` slots,
        possibly empty).
    assignment:
        Optional initial assignment: mapping from peer id to one cluster id
        or an iterable of cluster ids.
    """

    def __init__(
        self,
        cluster_ids: Iterable[ClusterId],
        assignment: Optional[Mapping[PeerId, object]] = None,
    ) -> None:
        self._clusters: Dict[ClusterId, Cluster] = {}
        for cluster_id in cluster_ids:
            if cluster_id in self._clusters:
                raise ConfigurationError(f"duplicate cluster id {cluster_id!r}")
            self._clusters[cluster_id] = Cluster(cluster_id)
        self._strategies: Dict[PeerId, Set[ClusterId]] = {}
        self._listeners: List["weakref.ref"] = []
        self._sorted_cluster_ids: Optional[List[ClusterId]] = None
        self._nonempty_cache: Optional[List[ClusterId]] = None
        self._empty_cache: Optional[List[ClusterId]] = None
        if assignment is not None:
            for peer_id, clusters in assignment.items():
                if isinstance(clusters, (str, bytes)) or not isinstance(clusters, Iterable):
                    clusters = [clusters]
                for cluster_id in clusters:
                    self.assign(peer_id, cluster_id)

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def singletons(cls, peer_ids: Sequence[PeerId]) -> "ClusterConfiguration":
        """Initial configuration (i) of the paper: every peer forms its own cluster."""
        cluster_ids = [f"c{index}" for index in range(len(peer_ids))]
        configuration = cls(cluster_ids)
        for index, peer_id in enumerate(peer_ids):
            configuration.assign(peer_id, cluster_ids[index])
        return configuration

    @classmethod
    def with_slots(cls, slot_count: int) -> "ClusterConfiguration":
        """An empty configuration with *slot_count* cluster slots named ``c0..c{n-1}``."""
        if slot_count <= 0:
            raise ConfigurationError("a configuration needs at least one cluster slot")
        return cls([f"c{index}" for index in range(slot_count)])

    def copy(self) -> "ClusterConfiguration":
        """Deep copy of the configuration (clusters and strategies)."""
        duplicate = ClusterConfiguration(self._clusters.keys())
        for peer_id, clusters in self._strategies.items():
            for cluster_id in clusters:
                duplicate.assign(peer_id, cluster_id)
        return duplicate

    # -- mutation listeners -------------------------------------------------------

    def add_listener(self, listener: object) -> None:
        """Register *listener* for membership-change callbacks (held weakly).

        A listener may implement any of ``configuration_assigned(peer_id,
        cluster_id)``, ``configuration_unassigned(peer_id, cluster_id)`` and
        ``configuration_cluster_added(cluster_id)``; missing methods are
        skipped.  Listeners are stored through weak references so a discarded
        listener (e.g. a per-round game's kernel) never outlives its owner.
        Dead references are pruned here and on every mutation notification,
        so churning kernels against a long-lived configuration keeps the
        listener list bounded by the number of *live* listeners.
        """
        if any(reference() is None for reference in self._listeners):
            self._listeners = [
                reference for reference in self._listeners if reference() is not None
            ]
        self._listeners.append(weakref.ref(listener))

    def remove_listener(self, listener: object) -> None:
        """Unregister *listener* (no-op when it was never registered)."""
        self._listeners = [
            reference for reference in self._listeners if reference() not in (None, listener)
        ]

    def _invalidate_partition_caches(self) -> None:
        self._nonempty_cache = None
        self._empty_cache = None

    def _notify(self, method: str, *args: object) -> None:
        if not self._listeners:
            return
        alive = []
        for reference in self._listeners:
            listener = reference()
            if listener is None:
                continue
            callback = getattr(listener, method, None)
            if callback is not None:
                callback(*args)
            alive.append(reference)
        if len(alive) != len(self._listeners):
            self._listeners = alive

    # -- cluster management -------------------------------------------------------

    def add_cluster(self, cluster_id: ClusterId) -> None:
        """Add a new (empty) cluster slot."""
        if cluster_id in self._clusters:
            raise ConfigurationError(f"cluster {cluster_id!r} already exists")
        self._clusters[cluster_id] = Cluster(cluster_id)
        self._sorted_cluster_ids = None
        self._invalidate_partition_caches()
        self._notify("configuration_cluster_added", cluster_id)

    def cluster(self, cluster_id: ClusterId) -> Cluster:
        """Return the :class:`Cluster` object for *cluster_id*."""
        try:
            return self._clusters[cluster_id]
        except KeyError:
            raise UnknownClusterError(cluster_id) from None

    def cluster_ids(self) -> List[ClusterId]:
        """All cluster slot identifiers (including empty slots), deterministic order."""
        if self._sorted_cluster_ids is None:
            self._sorted_cluster_ids = sorted(self._clusters, key=repr)
        return list(self._sorted_cluster_ids)

    def nonempty_clusters(self) -> List[ClusterId]:
        """Identifiers of clusters with at least one member."""
        if self._nonempty_cache is None:
            self._nonempty_cache = [
                cluster_id
                for cluster_id in self.cluster_ids()
                if not self._clusters[cluster_id].is_empty
            ]
        return list(self._nonempty_cache)

    def empty_clusters(self) -> List[ClusterId]:
        """Identifiers of empty cluster slots (candidates for cluster creation)."""
        if self._empty_cache is None:
            self._empty_cache = [
                cluster_id
                for cluster_id in self.cluster_ids()
                if self._clusters[cluster_id].is_empty
            ]
        return list(self._empty_cache)

    def size(self, cluster_id: ClusterId) -> int:
        """``|c|`` for the given cluster."""
        return self.cluster(cluster_id).size

    def sizes(self) -> Dict[ClusterId, int]:
        """Mapping of every non-empty cluster id to its size."""
        return {cluster_id: self._clusters[cluster_id].size for cluster_id in self.nonempty_clusters()}

    def members(self, cluster_id: ClusterId) -> FrozenSet[PeerId]:
        """The member peer ids of *cluster_id*."""
        return self.cluster(cluster_id).members

    # -- peer management --------------------------------------------------------------

    def peer_ids(self) -> List[PeerId]:
        """All assigned peer ids, deterministic order."""
        return sorted(self._strategies, key=repr)

    def num_peers(self) -> int:
        """Number of assigned peers (cheap — no sort)."""
        return len(self._strategies)

    def assign(self, peer_id: PeerId, cluster_id: ClusterId) -> None:
        """Add *cluster_id* to the strategy of *peer_id*."""
        cluster = self.cluster(cluster_id)
        strategy = self._strategies.setdefault(peer_id, set())
        if cluster_id in strategy:
            raise ConfigurationError(
                f"peer {peer_id!r} already belongs to cluster {cluster_id!r}"
            )
        strategy.add(cluster_id)
        cluster.add(peer_id)
        self._invalidate_partition_caches()
        self._notify("configuration_assigned", peer_id, cluster_id)

    def remove_peer(self, peer_id: PeerId) -> None:
        """Remove *peer_id* from every cluster (peer departure)."""
        strategy = self._strategies.pop(peer_id, None)
        if strategy is None:
            raise UnknownPeerError(peer_id)
        for cluster_id in sorted(strategy, key=repr):
            self._clusters[cluster_id].remove(peer_id)
            # Invalidate after every removal: a listener may (re)populate the
            # partition caches from inside its callback, and the caches must
            # never outlive a later membership change of this same loop.
            self._invalidate_partition_caches()
            self._notify("configuration_unassigned", peer_id, cluster_id)

    def move(self, peer_id: PeerId, from_cluster: ClusterId, to_cluster: ClusterId) -> None:
        """Relocate *peer_id* from *from_cluster* to *to_cluster*."""
        if from_cluster == to_cluster:
            raise ConfigurationError(
                f"cannot move peer {peer_id!r} to the cluster it already belongs to ({to_cluster!r})"
            )
        strategy = self._strategies.get(peer_id)
        if strategy is None:
            raise UnknownPeerError(peer_id)
        if from_cluster not in strategy:
            raise ConfigurationError(
                f"peer {peer_id!r} does not belong to cluster {from_cluster!r}"
            )
        destination = self.cluster(to_cluster)
        self._clusters[from_cluster].remove(peer_id)
        strategy.remove(from_cluster)
        strategy.add(to_cluster)
        destination.add(peer_id)
        self._invalidate_partition_caches()
        self._notify("configuration_unassigned", peer_id, from_cluster)
        self._notify("configuration_assigned", peer_id, to_cluster)

    def clusters_of(self, peer_id: PeerId) -> FrozenSet[ClusterId]:
        """The strategy ``s_i`` of *peer_id*: the set of clusters it belongs to."""
        strategy = self._strategies.get(peer_id)
        if strategy is None:
            raise UnknownPeerError(peer_id)
        return frozenset(strategy)

    def cluster_of(self, peer_id: PeerId) -> ClusterId:
        """The single cluster of *peer_id* (raises if the peer joined several clusters)."""
        strategy = self.clusters_of(peer_id)
        if len(strategy) != 1:
            raise ConfigurationError(
                f"peer {peer_id!r} belongs to {len(strategy)} clusters; expected exactly one"
            )
        return next(iter(strategy))

    def covered_peers(self, peer_id: PeerId) -> FrozenSet[PeerId]:
        """``P(s_i)``: the union of the member sets of the peer's clusters.

        For the protocol's common case — a peer belonging to exactly one
        cluster — this returns the cluster's cached member view directly
        instead of rebuilding a fresh set per call.
        """
        strategy = self._strategies.get(peer_id)
        if strategy is None:
            raise UnknownPeerError(peer_id)
        if len(strategy) == 1:
            return self._clusters[next(iter(strategy))].members
        covered: Set[PeerId] = set()
        for cluster_id in strategy:
            covered |= self._clusters[cluster_id].members
        return frozenset(covered)

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._strategies

    # -- analysis helpers ---------------------------------------------------------------

    def num_nonempty_clusters(self) -> int:
        """Number of clusters with at least one member (the paper's ``#Clusters``)."""
        return len(self.nonempty_clusters())

    def as_partition(self) -> Dict[ClusterId, FrozenSet[PeerId]]:
        """The non-empty clusters as a mapping ``cluster id -> members``."""
        return {cluster_id: self.members(cluster_id) for cluster_id in self.nonempty_clusters()}

    def membership_matrix(self, peer_order: Sequence[PeerId], cluster_order: Optional[Sequence[ClusterId]] = None) -> Tuple[np.ndarray, List[ClusterId]]:
        """0/1 membership matrix ``(|P|, |C|)`` used by the vectorised cost evaluation.

        Returns the matrix and the cluster ordering of its columns.
        """
        clusters = list(cluster_order) if cluster_order is not None else self.cluster_ids()
        matrix = np.zeros((len(peer_order), len(clusters)), dtype=float)
        cluster_index = {cluster_id: column for column, cluster_id in enumerate(clusters)}
        for row, peer_id in enumerate(peer_order):
            if peer_id not in self._strategies:
                continue
            for cluster_id in self._strategies[peer_id]:
                column = cluster_index.get(cluster_id)
                if column is not None:
                    matrix[row, column] = 1.0
        return matrix, clusters

    def signature(self) -> Tuple[Tuple[ClusterId, Tuple[PeerId, ...]], ...]:
        """A hashable snapshot of the partition, useful for convergence/cycle detection."""
        return tuple(
            (cluster_id, tuple(sorted(self.members(cluster_id), key=repr)))
            for cluster_id in self.nonempty_clusters()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterConfiguration):
            return NotImplemented
        return self.as_partition() == other.as_partition()

    def __repr__(self) -> str:
        return (
            f"ClusterConfiguration(peers={len(self._strategies)}, "
            f"clusters={self.num_nonempty_clusters()}/{len(self._clusters)})"
        )
