"""The peer network: the population ``P`` plus derived models.

:class:`PeerNetwork` owns the peers, exposes the global query workload ``Q``
and builds the derived models (recall model, weighted recall matrices, cost
model) that the game, the strategies and the protocol consume.  Because the
paper's whole point is coping with change, the network also supports peer
churn and content/workload updates; any such change invalidates the cached
derived models so that the next access rebuilds them against the current
state.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Dict, List, Optional

from repro.core.costs import CostModel
from repro.core.queries import Query, QueryWorkload
from repro.core.recall import RecallModel
from repro.core.recall_matrix import WeightedRecallMatrix
from repro.core.theta import LinearTheta, ThetaFunction
from repro.errors import ConfigurationError, UnknownPeerError
from repro.peers.configuration import ClusterConfiguration
from repro.peers.peer import Peer

__all__ = ["PeerNetwork"]

PeerId = Hashable


class PeerNetwork:
    """The set of peers ``P`` together with derived cost/recall models."""

    def __init__(self, peers: Optional[Iterable[Peer]] = None) -> None:
        self._peers: Dict[PeerId, Peer] = {}
        self._recall_model: Optional[RecallModel] = None
        self._matrix: Optional[WeightedRecallMatrix] = None
        self._peer_versions: Dict[PeerId, int] = {}
        if peers is not None:
            for peer in peers:
                self.add_peer(peer)

    # -- population management ---------------------------------------------------

    def add_peer(self, peer: Peer) -> None:
        """Add *peer* to the network (a join event)."""
        if peer.peer_id in self._peers:
            raise ConfigurationError(f"duplicate peer id {peer.peer_id!r}")
        self._peers[peer.peer_id] = peer
        self.invalidate()

    def remove_peer(self, peer_id: PeerId) -> Peer:
        """Remove and return the peer with *peer_id* (a leave event)."""
        try:
            peer = self._peers.pop(peer_id)
        except KeyError:
            raise UnknownPeerError(peer_id) from None
        self.invalidate()
        return peer

    def peer(self, peer_id: PeerId) -> Peer:
        """Return the peer with *peer_id*."""
        try:
            return self._peers[peer_id]
        except KeyError:
            raise UnknownPeerError(peer_id) from None

    def peer_ids(self) -> List[PeerId]:
        """All peer ids in deterministic order."""
        return sorted(self._peers, key=repr)

    def peers(self) -> List[Peer]:
        """All peers, ordered by peer id."""
        return [self._peers[peer_id] for peer_id in self.peer_ids()]

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._peers

    def __len__(self) -> int:
        return len(self._peers)

    def __deepcopy__(self, memo: Dict[int, object]) -> "PeerNetwork":
        """Deep copy the peers but none of the derived-model caches.

        The recall model / matrix are pure functions of the peers and can be
        rebuilt on demand; copying them would waste time and — worse — hand
        the copy caches built from a *pre-mutation* snapshot if the caller
        copies precisely because it intends to mutate (the sweep engine's
        copy-on-write scenario cache does exactly that).
        """
        import copy as _copy

        duplicate = PeerNetwork()
        memo[id(self)] = duplicate
        duplicate._peers = _copy.deepcopy(self._peers, memo)
        return duplicate

    # -- derived models --------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop cached derived models (called after churn or content/workload updates)."""
        self._recall_model = None
        self._matrix = None
        self._peer_versions = {}

    def _versions_changed(self) -> bool:
        return any(
            self._peer_versions.get(peer_id) != peer.version
            for peer_id, peer in self._peers.items()
        ) or len(self._peer_versions) != len(self._peers)

    def recall_model(self) -> RecallModel:
        """The exact recall model over the current population and content."""
        if self._recall_model is None or self._versions_changed():
            self._recall_model = RecallModel(
                {peer_id: peer.index for peer_id, peer in self._peers.items()}
            )
            self._matrix = None
            self._peer_versions = {peer_id: peer.version for peer_id, peer in self._peers.items()}
        return self._recall_model

    def workloads(self) -> Dict[PeerId, QueryWorkload]:
        """Mapping of peer id to its local workload ``Q(p)`` (live references)."""
        return {peer_id: peer.workload for peer_id, peer in self._peers.items()}

    def global_workload(self) -> QueryWorkload:
        """The global query list ``Q`` (merge of every local workload)."""
        merged = QueryWorkload()
        for peer in self._peers.values():
            merged = merged.merge(peer.workload)
        return merged

    def recall_matrix(
        self, *, rebuild: bool = False, mode: Optional[str] = None
    ) -> WeightedRecallMatrix:
        """The weighted recall matrix over the current state (cached).

        ``mode`` selects the matrix representation (``"dense"`` eagerly
        builds the |P| x |P| arrays, ``"factored"`` keeps the compact
        recall-table factorisation for the labels kernel backend); a cached
        matrix of a different mode is rebuilt.
        """
        recall_model = self.recall_model()
        if self._matrix is None or rebuild or (
            mode is not None and self._matrix.mode != mode
        ):
            self._matrix = WeightedRecallMatrix(
                recall_model,
                self.workloads(),
                self.peer_ids(),
                mode=mode if mode is not None else "dense",
            )
        return self._matrix

    def adopt_recall_matrix(self, matrix: WeightedRecallMatrix) -> None:
        """Install an externally-built matrix as the cached one.

        The shared-memory sweep tier builds matrices whose arrays live in a
        shared segment published by the coordinator; workers adopt them so
        :meth:`recall_matrix` / :meth:`cost_model` reuse the shared arrays
        instead of recomputing |P| x |P| products per process.  The matrix
        must describe exactly this network's population.
        """
        if matrix.peer_order != self.peer_ids():
            raise ConfigurationError(
                "adopted recall matrix does not match the network's peer population"
            )
        # Prime the version snapshot so the adopted matrix is not immediately
        # discarded by the staleness check in recall_model().
        self.recall_model()
        self._matrix = matrix

    def cost_model(
        self,
        *,
        theta: Optional[ThetaFunction] = None,
        alpha: float = 1.0,
        use_matrix: bool = True,
        matrix_mode: Optional[str] = None,
    ) -> CostModel:
        """Build a :class:`CostModel` for the current network state.

        With ``use_matrix=True`` (the default) the weighted recall matrix is
        attached, which is what the experiment-scale runs need; passing
        ``False`` yields the exact per-query reference evaluation.
        ``matrix_mode`` is forwarded to :meth:`recall_matrix` (use
        ``"factored"`` for the labels kernel backend at large populations —
        the dense |P| x |P| arrays are then never materialised).
        """
        model = CostModel(
            self.recall_model(),
            self.workloads(),
            theta=theta if theta is not None else LinearTheta(),
            alpha=alpha,
            population_size=len(self._peers),
        )
        if use_matrix:
            model.attach_matrix(self.recall_matrix(mode=matrix_mode))
        return model

    # -- configuration helpers ---------------------------------------------------------

    def full_configuration_slots(self) -> ClusterConfiguration:
        """An empty configuration with ``Cmax = |P|`` cluster slots (the paper's setting)."""
        return ClusterConfiguration.with_slots(len(self._peers))

    def singleton_configuration(self) -> ClusterConfiguration:
        """Initial configuration (i): every peer in its own cluster."""
        return ClusterConfiguration.singletons(self.peer_ids())

    def result_count(self, query: Query, peer_id: PeerId) -> int:
        """``result(q, p)`` evaluated directly against a peer's index."""
        return self.peer(peer_id).result_count(query)

    def __repr__(self) -> str:
        return f"PeerNetwork(peers={len(self._peers)})"
