"""Clusters: named groups of peers with a representative.

Every cluster has a unique identifier ``cid`` known to all of its members
(the paper assumes exactly this), a member set and, while the reformulation
protocol runs, a *representative* peer that gathers and serves relocation
requests on behalf of the cluster.  Representatives are not fixed — the
protocol may elect a different representative in every round — so the class
exposes a simple deterministic election helper.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import FrozenSet, Optional, Set

from repro.errors import ConfigurationError

__all__ = ["Cluster"]

PeerId = Hashable
ClusterId = Hashable


class Cluster:
    """A cluster of peers identified by a unique ``cid``."""

    def __init__(self, cluster_id: ClusterId, members: Optional[Iterable[PeerId]] = None) -> None:
        self.cluster_id = cluster_id
        self._members: Set[PeerId] = set(members) if members is not None else set()
        self._members_view: Optional[FrozenSet[PeerId]] = None
        self._representative: Optional[PeerId] = None

    # -- membership -----------------------------------------------------------

    @property
    def members(self) -> FrozenSet[PeerId]:
        """The current member peer ids (immutable view, cached between mutations)."""
        if self._members_view is None:
            self._members_view = frozenset(self._members)
        return self._members_view

    @property
    def size(self) -> int:
        """Number of members (``|c|``)."""
        return len(self._members)

    @property
    def is_empty(self) -> bool:
        """``True`` when the cluster has no members (an empty cluster slot)."""
        return not self._members

    def add(self, peer_id: PeerId) -> None:
        """Add *peer_id* to the cluster."""
        self._members.add(peer_id)
        self._members_view = None

    def remove(self, peer_id: PeerId) -> None:
        """Remove *peer_id* from the cluster, clearing the representative if it leaves."""
        if peer_id not in self._members:
            raise ConfigurationError(
                f"peer {peer_id!r} is not a member of cluster {self.cluster_id!r}"
            )
        self._members.remove(peer_id)
        self._members_view = None
        if self._representative == peer_id:
            self._representative = None

    def __contains__(self, peer_id: PeerId) -> bool:
        return peer_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(sorted(self._members, key=repr))

    # -- representative ----------------------------------------------------------

    @property
    def representative(self) -> Optional[PeerId]:
        """The peer currently acting as the cluster representative (if any)."""
        return self._representative

    def elect_representative(self, peer_id: Optional[PeerId] = None) -> Optional[PeerId]:
        """Elect a representative.

        If *peer_id* is given it must be a member; otherwise the smallest
        member id (deterministic) is elected.  Returns the elected peer, or
        ``None`` for an empty cluster.
        """
        if peer_id is not None:
            if peer_id not in self._members:
                raise ConfigurationError(
                    f"cannot elect non-member {peer_id!r} as representative of {self.cluster_id!r}"
                )
            self._representative = peer_id
            return peer_id
        if not self._members:
            self._representative = None
            return None
        self._representative = min(self._members, key=repr)
        return self._representative

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cluster):
            return NotImplemented
        return self.cluster_id == other.cluster_id and self._members == other._members

    def __repr__(self) -> str:
        return f"Cluster(cluster_id={self.cluster_id!r}, size={self.size})"
