"""repro — a full reproduction of "Recall-Based Cluster Reformulation by Selfish Peers".

The library models a clustered peer-to-peer overlay in which peers decide,
based only on the recall their queries achieve, whether to move to a
different cluster.  It provides:

* the data/recall/cost model of the paper (``repro.core``),
* the peer and cluster substrate (``repro.peers``),
* the overlay simulation with cid-annotated query results (``repro.overlay``),
* the game-theoretic view of cluster formation (``repro.game``),
* the selfish / altruistic / hybrid relocation strategies (``repro.strategies``),
* the round-based reformulation protocol (``repro.protocol``),
* the unified session API: ``Simulation`` / ``SimulationBuilder`` /
  ``SessionConfig`` / ``RunResult`` (``repro.session``) over the component
  registries (``repro.registry``) and event hooks (``repro.events``),
* the parallel sweep engine: ``SweepSpec`` / ``run_sweep`` / ``SweepResult``
  (``repro.sweep``) fanning replicated experiments out over a process pool
  with deterministic per-task seed streams,
* the event-driven query-traffic simulator: ``TrafficSimulator`` /
  ``TrafficReport`` / registered arrival workloads (``repro.traffic``)
  replaying hundreds of thousands of queries against a clustering and
  reporting latency/hops/bandwidth/recall distributions,
* dataset generators, dynamics, baselines, analysis utilities and the
  experiment drivers that regenerate every table and figure of the paper.

Quickstart::

    from repro import Simulation, SessionConfig

    result = Simulation.from_config(
        SessionConfig(scenario="same_category", strategy="selfish", scale="quick")
    ).run()
    print(result.converged, result.final_social_cost)

Every component is selected by registry name; plug in your own with the
``repro.registry`` decorators (``@register_strategy``, ``@register_theta``,
``@register_scenario``, ``@register_router``, ``@register_initializer``,
``@register_workload``)
and they become usable from ``SessionConfig``, the CLI and the experiment
drivers.  Subscribe to protocol events instead of post-hoc traces::

    simulation = Simulation.from_config(SessionConfig(scale="quick"))
    simulation.on_round_end(lambda event: print(event.round_number, event.social_cost))
    simulation.run()

Low-level API (what the facade assembles for you)::

    from repro import (
        ExperimentConfig, build_scenario, initial_configuration,
        ReformulationProtocol, SelfishStrategy, SCENARIO_SAME_CATEGORY,
    )

    config = ExperimentConfig.quick()
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    configuration = initial_configuration(data, "singletons")
    cost_model = data.network.cost_model(alpha=config.alpha)
    protocol = ReformulationProtocol(cost_model, configuration, SelfishStrategy())
    result = protocol.run()
    print(result.converged, result.final_social_cost)
"""

from repro.baselines import GlobalReclustering, RandomRelocationStrategy, StaticStrategy
from repro.core import (
    AttributeSet,
    CostModel,
    Document,
    DocumentCollection,
    InvertedIndex,
    LinearTheta,
    LogarithmicTheta,
    NEW_CLUSTER,
    Query,
    QueryWorkload,
    RecallModel,
    ThetaFunction,
    Vocabulary,
    WeightedRecallMatrix,
    theta_from_name,
)
from repro.datasets import (
    SCENARIO_DIFFERENT_CATEGORY,
    SCENARIO_SAME_CATEGORY,
    SCENARIO_UNIFORM,
    CorpusConfig,
    CorpusGenerator,
    ScenarioConfig,
    ScenarioData,
    build_scenario,
    category_configuration,
    initial_configuration,
)
from repro.errors import (
    ConfigurationError,
    DatasetError,
    DuplicateComponentError,
    ProtocolError,
    RegistryError,
    ReproError,
    StrategyError,
    UnknownClusterError,
    UnknownComponentError,
    UnknownPeerError,
)
from repro.dynamics import (
    DriftModel,
    DriftReport,
    DriftRule,
    DynamicsSchedule,
    build_drift_model,
)
from repro.events import (
    CostTraceRecorder,
    DriftAppliedEvent,
    EventHooks,
    PeriodEndEvent,
    RelocationGrantedEvent,
    RoundEndEvent,
    SweepEndEvent,
    TaskFinishedEvent,
    TaskLoadedEvent,
    TaskSkippedEvent,
    TaskStartedEvent,
)
from repro.experiments import (
    ExperimentConfig,
    build_strategy,
    run_all,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_table1,
)
from repro.game import (
    BestResponse,
    ClusterGame,
    build_two_peer_counterexample,
    find_pure_nash_equilibria,
    run_best_response_dynamics,
)
from repro.overlay import BroadcastRouter, MessageBus, OverlaySimulator, ProbeKRouter
from repro.peers import Cluster, ClusterConfiguration, Peer, PeerNetwork
from repro.protocol import ProtocolResult, ReformulationProtocol
from repro.registry import (
    ComponentRegistry,
    register_drift,
    register_executor,
    register_initializer,
    register_router,
    register_runner,
    register_scenario,
    register_strategy,
    register_theta,
)
from repro.session import RunResult, SessionConfig, Simulation, SimulationBuilder
from repro.sweep import (
    ResultStore,
    Runner,
    SweepExecutor,
    SweepResult,
    SweepSpec,
    SweepTask,
    run_sweep,
    task_hash,
)
from repro.strategies import (
    AltruisticStrategy,
    HybridStrategy,
    RelocationProposal,
    SelfishStrategy,
    StrategyContext,
)
from repro.registry import register_workload
from repro.traffic import (
    LinkModel,
    QueryEventStream,
    TrafficLog,
    TrafficReport,
    TrafficSimulator,
    WorkloadContext,
    WorkloadGenerator,
    build_workload,
)

#: Kept in sync with ``pyproject.toml``.
__version__ = "1.1.0"

__all__ = [
    "__version__",
    # session API
    "Simulation",
    "SimulationBuilder",
    "SessionConfig",
    "RunResult",
    # sweep engine
    "SweepSpec",
    "SweepTask",
    "SweepResult",
    "run_sweep",
    "Runner",
    "SweepExecutor",
    "ResultStore",
    "task_hash",
    # registries
    "ComponentRegistry",
    "register_strategy",
    "register_theta",
    "register_scenario",
    "register_router",
    "register_initializer",
    "register_runner",
    "register_drift",
    "register_workload",
    "register_executor",
    # traffic
    "TrafficSimulator",
    "TrafficReport",
    "TrafficLog",
    "QueryEventStream",
    "LinkModel",
    "WorkloadContext",
    "WorkloadGenerator",
    "build_workload",
    # dynamics
    "DriftModel",
    "DriftReport",
    "DriftRule",
    "DynamicsSchedule",
    "build_drift_model",
    # events
    "EventHooks",
    "RoundEndEvent",
    "RelocationGrantedEvent",
    "PeriodEndEvent",
    "DriftAppliedEvent",
    "TaskStartedEvent",
    "TaskFinishedEvent",
    "TaskSkippedEvent",
    "TaskLoadedEvent",
    "SweepEndEvent",
    "CostTraceRecorder",
    # core
    "AttributeSet",
    "Vocabulary",
    "Document",
    "DocumentCollection",
    "Query",
    "QueryWorkload",
    "InvertedIndex",
    "RecallModel",
    "WeightedRecallMatrix",
    "CostModel",
    "NEW_CLUSTER",
    "ThetaFunction",
    "LinearTheta",
    "LogarithmicTheta",
    "theta_from_name",
    # peers
    "Peer",
    "Cluster",
    "ClusterConfiguration",
    "PeerNetwork",
    # overlay
    "MessageBus",
    "BroadcastRouter",
    "ProbeKRouter",
    "OverlaySimulator",
    # game
    "ClusterGame",
    "BestResponse",
    "run_best_response_dynamics",
    "build_two_peer_counterexample",
    "find_pure_nash_equilibria",
    # strategies
    "SelfishStrategy",
    "AltruisticStrategy",
    "HybridStrategy",
    "RelocationProposal",
    "StrategyContext",
    # protocol
    "ReformulationProtocol",
    "ProtocolResult",
    # datasets
    "CorpusConfig",
    "CorpusGenerator",
    "ScenarioConfig",
    "ScenarioData",
    "build_scenario",
    "initial_configuration",
    "category_configuration",
    "SCENARIO_SAME_CATEGORY",
    "SCENARIO_DIFFERENT_CATEGORY",
    "SCENARIO_UNIFORM",
    # baselines
    "GlobalReclustering",
    "RandomRelocationStrategy",
    "StaticStrategy",
    # experiments
    "ExperimentConfig",
    "build_strategy",
    "run_table1",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_all",
    # errors
    "ReproError",
    "ConfigurationError",
    "UnknownPeerError",
    "UnknownClusterError",
    "ProtocolError",
    "DatasetError",
    "StrategyError",
    "RegistryError",
    "UnknownComponentError",
    "DuplicateComponentError",
]
