"""Static (no-maintenance) baseline.

The simplest possible comparison point: the overlay is never updated.  The
strategy always proposes to stay, so running the reformulation protocol with
it performs no moves and the configuration's cost after an update equals the
cost before any maintenance — the quantity the paper's Figures 2 and 3
implicitly compare against when noting that neither strategy recovers the
original social cost.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Optional

from repro.strategies.base import RelocationProposal, RelocationStrategy, StrategyContext
from repro.registry import register_strategy

__all__ = ["StaticStrategy"]

PeerId = Hashable


@register_strategy("static")
class StaticStrategy(RelocationStrategy):
    """Never relocate."""

    name = "static"

    def propose(self, peer_id: PeerId, context: StrategyContext) -> Optional[RelocationProposal]:
        return self._stay(peer_id, context)
