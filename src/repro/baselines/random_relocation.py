"""Random relocation baseline.

A strategy that proposes a move to a uniformly random non-empty cluster for a
fixed fraction of peers each period.  It plugs into the same reformulation
protocol as the paper's strategies, so benchmarks can isolate how much of the
protocol's improvement comes from the recall-driven gain (versus merely
shuffling peers around).
"""

from __future__ import annotations

import random
from collections.abc import Hashable
from typing import Optional

from repro.errors import StrategyError
from repro.registry import register_strategy
from repro.strategies.base import RelocationProposal, RelocationStrategy, StrategyContext

__all__ = ["RandomRelocationStrategy"]

PeerId = Hashable


@register_strategy("random")
class RandomRelocationStrategy(RelocationStrategy):
    """Propose a random move with probability ``move_probability`` per peer per period."""

    name = "random"

    def __init__(self, *, move_probability: float = 0.2, seed: int = 0) -> None:
        if not 0.0 <= move_probability <= 1.0:
            raise StrategyError(
                f"move_probability must be in [0, 1], got {move_probability}"
            )
        self.move_probability = move_probability
        self.rng = random.Random(seed)

    def propose(self, peer_id: PeerId, context: StrategyContext) -> Optional[RelocationProposal]:
        configuration = context.game.configuration
        current = configuration.cluster_of(peer_id)
        if self.rng.random() >= self.move_probability:
            return self._stay(peer_id, context)
        candidates = [
            cluster_id
            for cluster_id in configuration.nonempty_clusters()
            if cluster_id != current
        ]
        if not candidates:
            return self._stay(peer_id, context)
        target = self.rng.choice(candidates)
        # The reported gain is deliberately tiny but positive so the protocol
        # treats the request as actionable while still ranking any
        # recall-driven request above it in mixed-strategy comparisons.
        return RelocationProposal(
            peer_id=peer_id, source_cluster=current, target_cluster=target, gain=1e-6
        )

    def __repr__(self) -> str:
        return f"RandomRelocationStrategy(move_probability={self.move_probability})"
