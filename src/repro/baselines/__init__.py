"""Baselines: global re-clustering, random relocation, and no maintenance."""

from repro.baselines.global_reclustering import (
    GlobalReclustering,
    ReclusteringResult,
    jaccard_similarity,
)
from repro.baselines.random_relocation import RandomRelocationStrategy
from repro.baselines.static import StaticStrategy

__all__ = [
    "GlobalReclustering",
    "ReclusteringResult",
    "jaccard_similarity",
    "RandomRelocationStrategy",
    "StaticStrategy",
]
