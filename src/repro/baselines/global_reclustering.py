"""Global re-clustering baseline.

The paper's introduction contrasts local maintenance with the obvious
alternative: re-apply the clustering procedure that formed the original
overlay from scratch, using global knowledge of the updated state.  That
alternative is implemented here so the benchmarks can compare the protocol's
quality and communication cost against it.

The clustering itself is a deterministic k-medoids-style procedure over peer
*profiles* (the multiset of attributes of a peer's documents) with Jaccard
similarity — a reasonable stand-in for the topic-segmentation style formation
schemes the paper cites ([1], [8]).  Message accounting assumes every peer
ships its profile to a coordinator and receives its assignment back, which is
exactly the "global knowledge" cost the paper wants to avoid.
"""

from __future__ import annotations

import random
from collections.abc import Hashable
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.errors import ConfigurationError
from repro.overlay.messages import MessageBus, QueryMessage, ResultMessage
from repro.peers.configuration import ClusterConfiguration
from repro.peers.network import PeerNetwork

__all__ = ["ReclusteringResult", "GlobalReclustering", "jaccard_similarity"]

PeerId = Hashable


def jaccard_similarity(left: FrozenSet[str], right: FrozenSet[str]) -> float:
    """Jaccard similarity of two attribute sets (1 for two empty sets)."""
    if not left and not right:
        return 1.0
    union = left | right
    if not union:
        return 1.0
    return len(left & right) / len(union)


@dataclass
class ReclusteringResult:
    """Outcome of a global re-clustering pass."""

    configuration: ClusterConfiguration
    iterations: int
    messages: int


class GlobalReclustering:
    """Centralised k-medoids-style clustering of peers by content similarity."""

    def __init__(self, *, num_clusters: int, max_iterations: int = 20, seed: int = 0) -> None:
        if num_clusters <= 0:
            raise ConfigurationError(f"num_clusters must be positive, got {num_clusters}")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.seed = seed

    # -- profiles -------------------------------------------------------------

    @staticmethod
    def peer_profile(network: PeerNetwork, peer_id: PeerId) -> FrozenSet[str]:
        """The attribute profile of a peer: the union of its documents' attributes."""
        attributes: set = set()
        for document in network.peer(peer_id).documents:
            attributes |= set(document.attributes)
        return frozenset(attributes)

    # -- clustering --------------------------------------------------------------

    def recluster(
        self, network: PeerNetwork, *, bus: Optional[MessageBus] = None
    ) -> ReclusteringResult:
        """Cluster every peer from scratch and return the new configuration."""
        peer_ids = network.peer_ids()
        if not peer_ids:
            raise ConfigurationError("cannot recluster an empty network")
        clusters = min(self.num_clusters, len(peer_ids))
        profiles: Dict[PeerId, FrozenSet[str]] = {
            peer_id: self.peer_profile(network, peer_id) for peer_id in peer_ids
        }

        messages = 0
        if bus is not None:
            for peer_id in peer_ids:
                bus.publish(
                    QueryMessage(sender=peer_id, receiver="coordinator", query="profile")
                )
        messages += len(peer_ids)

        rng = random.Random(self.seed)
        medoids: List[PeerId] = rng.sample(peer_ids, clusters)
        assignment: Dict[PeerId, int] = {}
        iterations = 0
        for iteration in range(self.max_iterations):
            iterations = iteration + 1
            new_assignment = {
                peer_id: self._closest_medoid(profiles, medoids, peer_id)
                for peer_id in peer_ids
            }
            new_medoids = self._update_medoids(profiles, new_assignment, medoids)
            if new_assignment == assignment and new_medoids == medoids:
                break
            assignment = new_assignment
            medoids = new_medoids

        configuration = ClusterConfiguration.with_slots(len(peer_ids))
        slots = configuration.cluster_ids()
        for peer_id in peer_ids:
            configuration.assign(peer_id, slots[assignment[peer_id]])

        if bus is not None:
            for peer_id in peer_ids:
                bus.publish(
                    ResultMessage(sender="coordinator", receiver=peer_id, result_count=1)
                )
        messages += len(peer_ids)
        return ReclusteringResult(
            configuration=configuration, iterations=iterations, messages=messages
        )

    def _closest_medoid(
        self,
        profiles: Dict[PeerId, FrozenSet[str]],
        medoids: List[PeerId],
        peer_id: PeerId,
    ) -> int:
        similarities = [
            jaccard_similarity(profiles[peer_id], profiles[medoid]) for medoid in medoids
        ]
        best = max(range(len(medoids)), key=lambda index: (similarities[index], -index))
        return best

    def _update_medoids(
        self,
        profiles: Dict[PeerId, FrozenSet[str]],
        assignment: Dict[PeerId, int],
        medoids: List[PeerId],
    ) -> List[PeerId]:
        new_medoids: List[PeerId] = list(medoids)
        for cluster_index in range(len(medoids)):
            members = sorted(
                (peer_id for peer_id, cluster in assignment.items() if cluster == cluster_index),
                key=repr,
            )
            if not members:
                continue
            best_member = max(
                members,
                key=lambda candidate: (
                    sum(
                        jaccard_similarity(profiles[candidate], profiles[other])
                        for other in members
                    ),
                    repr(candidate),
                ),
            )
            new_medoids[cluster_index] = best_member
        return new_medoids

    def __repr__(self) -> str:
        return f"GlobalReclustering(num_clusters={self.num_clusters})"
