"""Named-component registries: the library's plugin surface.

Every pluggable ingredient of a simulation — relocation strategies, theta
(cluster membership cost) functions, dataset scenarios, query routers and
initial-configuration builders — is registered in a
:class:`ComponentRegistry` under a short name.  The pre-existing factory
entry points (``build_strategy``, ``theta_from_name``, ``build_scenario``,
``initial_configuration``, ``build_router``) are thin lookups into these
registries, so third parties can plug in new components without touching the
core modules::

    from repro.registry import register_strategy
    from repro.strategies.base import RelocationStrategy

    @register_strategy("lazy")
    class LazyStrategy(RelocationStrategy):
        def propose(self, peer_id, context):
            return None

    # "lazy" is now usable by name everywhere a strategy name is accepted:
    # SessionConfig(strategy="lazy"), build_strategy("lazy"), the CLI, ...

Names are normalised (lower-cased, ``_`` treated as ``-``) so that e.g.
``"same_category"`` and ``"same-category"`` refer to the same scenario.
Registering a taken name raises :class:`~repro.errors.DuplicateComponentError`
unless ``replace=True``; looking up a missing name raises
:class:`~repro.errors.UnknownComponentError` whose message enumerates the
available components.

The registry is deliberately ignorant of the component types it stores; the
modules that define the built-in components register them at import time, so
importing a component module (or anything that re-exports it, e.g. ``repro``
or ``repro.session``) is enough to populate the registries.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DuplicateComponentError, UnknownComponentError

__all__ = [
    "ComponentRegistry",
    "strategy_registry",
    "theta_registry",
    "scenario_registry",
    "router_registry",
    "initializer_registry",
    "runner_registry",
    "drift_registry",
    "workload_registry",
    "executor_registry",
    "register_strategy",
    "register_theta",
    "register_scenario",
    "register_router",
    "register_initializer",
    "register_runner",
    "register_drift",
    "register_workload",
    "register_executor",
]


def _normalize(name: object) -> str:
    return str(name).strip().lower().replace("_", "-")


class ComponentRegistry:
    """A mapping of normalised names (and aliases) to registered components.

    A "component" is any object — typically a class or factory callable —
    that :meth:`create` can call to build an instance.  Non-callable payloads
    (e.g. declarative spec objects) are supported through :meth:`get`.
    """

    def __init__(self, kind: str) -> None:
        #: Human-readable kind used in error messages ("strategy", "router", ...).
        self.kind = kind
        self._components: Dict[str, Any] = {}
        self._canonical: Dict[str, str] = {}  # normalised name/alias -> canonical name

    # -- registration ------------------------------------------------------------

    def register(
        self,
        name: str,
        component: Optional[Any] = None,
        *,
        aliases: Sequence[str] = (),
        replace: bool = False,
    ) -> Any:
        """Register *component* under *name* (plus *aliases*).

        Usable directly (``registry.register("x", factory)``) or as a
        decorator (``@registry.register("x")``).  Returns the component so
        decorated classes/functions stay bound to their module name.
        """
        if component is None:
            def decorator(actual: Any) -> Any:
                self.register(name, actual, aliases=aliases, replace=replace)
                return actual

            return decorator

        canonical = _normalize(name)
        keys = [canonical] + [_normalize(alias) for alias in aliases]
        if not replace:
            for key in keys:
                if key in self._canonical:
                    raise DuplicateComponentError(self.kind, key)
        self._components[canonical] = component
        for key in keys:
            self._canonical[key] = canonical
        return component

    def unregister(self, name: str) -> None:
        """Remove a component and every alias pointing at it."""
        canonical = self._canonical.get(_normalize(name))
        if canonical is None:
            raise UnknownComponentError(self.kind, name, self.names())
        del self._components[canonical]
        self._canonical = {
            key: target for key, target in self._canonical.items() if target != canonical
        }

    # -- lookup ------------------------------------------------------------------

    def canonical_name(self, name: str) -> str:
        """The canonical registered name for *name* (resolving aliases)."""
        canonical = self._canonical.get(_normalize(name))
        if canonical is None:
            raise UnknownComponentError(self.kind, name, self.names())
        return canonical

    def get(self, name: str) -> Any:
        """The registered component for *name* (resolving aliases)."""
        return self._components[self.canonical_name(name)]

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the component registered under *name*."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> List[str]:
        """The sorted canonical component names (aliases excluded)."""
        return sorted(self._components)

    def items(self) -> List[Tuple[str, Any]]:
        """``(canonical name, component)`` pairs, sorted by name."""
        return sorted(self._components.items())

    def __contains__(self, name: object) -> bool:
        return _normalize(name) in self._canonical

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:
        return f"ComponentRegistry(kind={self.kind!r}, names={self.names()})"


#: Relocation strategies (``selfish``, ``altruistic``, ``hybrid``, baselines, plugins).
strategy_registry = ComponentRegistry("strategy")
#: Cluster membership cost functions (``linear``, ``logarithmic``, ...).
theta_registry = ComponentRegistry("theta function")
#: Dataset scenarios (``same-category``, ``different-category``, ``uniform``).
scenario_registry = ComponentRegistry("scenario")
#: Query routers (``broadcast``, ``probe-k``).
router_registry = ComponentRegistry("router")
#: Initial-configuration builders (``singletons``, ``random``, ``fewer``, ``more``, ``category``).
initializer_registry = ComponentRegistry("initial configuration")
#: Sweep task runners (``discover``, ``maintain``, experiment-specific runners).
#: A runner is ``callable(simulation, options) -> RunResult`` and is referenced
#: by name from a :class:`~repro.sweep.spec.SweepTask`, so tasks serialize
#: cleanly across process boundaries.
runner_registry = ComponentRegistry("sweep runner")
#: Exogenous drift models (``workload-full``, ``content-fraction``, ``churn``,
#: ``composite``, ``none``, plugins).  A drift model is a factory/class whose
#: instances implement the :class:`~repro.dynamics.models.DriftModel` protocol
#: (``prepare(data, rng)`` / ``apply(network, configuration, period, rng)``)
#: and are constructible from a plain dict of strings/numbers, so dynamics
#: specs round-trip through JSON like every other component reference.
drift_registry = ComponentRegistry("drift model")
#: Traffic workload generators (``uniform``, ``zipf``, ``flash-crowd``,
#: ``replay``, plugins).  A workload generator is a factory/class whose
#: instances implement the :class:`~repro.traffic.workloads.WorkloadGenerator`
#: protocol (``streams(context) -> [QueryEventStream, ...]``) and are
#: constructible from a plain dict of strings/numbers, so arrival patterns
#: sweep and JSON-round-trip like every other component reference.
workload_registry = ComponentRegistry("traffic workload")
#: Sweep executors (``serial``, ``process-pool``, ``chunked-streaming``,
#: plugins).  An executor is a factory/class whose instances implement the
#: :class:`~repro.sweep.executors.SweepExecutor` protocol (``run(tasks,
#: context) -> iterator of task outcomes``) and are constructible from a
#: plain dict of strings/numbers, so execution backends are selected by name
#: or JSON spec like every other component — a distributed backend is a
#: drop-in registration away.
executor_registry = ComponentRegistry("sweep executor")


def register_strategy(
    name: str, *, aliases: Sequence[str] = (), replace: bool = False
) -> Callable[[Any], Any]:
    """Class/factory decorator registering a relocation strategy under *name*."""
    return strategy_registry.register(name, aliases=aliases, replace=replace)


def register_theta(
    name: str, *, aliases: Sequence[str] = (), replace: bool = False
) -> Callable[[Any], Any]:
    """Class/factory decorator registering a theta function under *name*."""
    return theta_registry.register(name, aliases=aliases, replace=replace)


def register_scenario(
    name: str, *, aliases: Sequence[str] = (), replace: bool = False
) -> Callable[[Any], Any]:
    """Decorator registering a scenario spec under *name*."""
    return scenario_registry.register(name, aliases=aliases, replace=replace)


def register_router(
    name: str, *, aliases: Sequence[str] = (), replace: bool = False
) -> Callable[[Any], Any]:
    """Class/factory decorator registering a query router under *name*."""
    return router_registry.register(name, aliases=aliases, replace=replace)


def register_initializer(
    name: str, *, aliases: Sequence[str] = (), replace: bool = False
) -> Callable[[Any], Any]:
    """Decorator registering an initial-configuration builder under *name*."""
    return initializer_registry.register(name, aliases=aliases, replace=replace)


def register_drift(
    name: str, *, aliases: Sequence[str] = (), replace: bool = False
) -> Callable[[Any], Any]:
    """Class/factory decorator registering an exogenous drift model under *name*.

    The registered component is called with the model's plain-dict options
    (``drift_registry.create(name, **options)``) and must return an object
    implementing the :class:`~repro.dynamics.models.DriftModel` protocol.
    """
    return drift_registry.register(name, aliases=aliases, replace=replace)


def register_workload(
    name: str, *, aliases: Sequence[str] = (), replace: bool = False
) -> Callable[[Any], Any]:
    """Class/factory decorator registering a traffic workload generator under *name*.

    The registered component is called with the generator's plain-dict
    options (``workload_registry.create(name, **options)``) and must return
    an object implementing the
    :class:`~repro.traffic.workloads.WorkloadGenerator` protocol.
    """
    return workload_registry.register(name, aliases=aliases, replace=replace)


def register_executor(
    name: str, *, aliases: Sequence[str] = (), replace: bool = False
) -> Callable[[Any], Any]:
    """Class/factory decorator registering a sweep executor under *name*.

    The registered component is called with the executor's plain-dict options
    (``executor_registry.create(name, **options)``) and must return an object
    implementing the :class:`~repro.sweep.executors.SweepExecutor` protocol.
    """
    return executor_registry.register(name, aliases=aliases, replace=replace)


def register_runner(
    name: str,
    *,
    aliases: Sequence[str] = (),
    replace: bool = False,
    mutates_scenario: Optional[bool] = None,
) -> Callable[[Any], Any]:
    """Decorator registering a sweep task runner under *name*.

    A runner receives a fully assembled
    :class:`~repro.session.simulation.Simulation` plus the task's plain-dict
    options and returns a :class:`~repro.session.result.RunResult`.

    ``mutates_scenario`` declares whether the runner mutates the scenario's
    network (content/workload updates, churn).  The sweep engine's per-worker
    scenario cache hands non-mutating runners the shared
    :class:`~repro.datasets.scenarios.ScenarioData` and mutating runners a
    private deep copy.  Runners that do not declare the flag are treated as
    mutating (the safe default).
    """

    def decorator(component: Any) -> Any:
        if mutates_scenario is not None:
            component.mutates_scenario = mutates_scenario
        return runner_registry.register(name, component, aliases=aliases, replace=replace)

    return decorator
