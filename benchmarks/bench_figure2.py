"""Figure 2 — social cost after workload updates in one cluster.

Expected shape: the social cost grows with the fraction of updated peers /
updated workload; the selfish strategy only recovers cost for large changes
(>= 50%), and neither strategy returns to the original (pre-update) cost.
"""

from __future__ import annotations

from benchmarks.conftest import print_block, run_once
from repro.experiments.figure2 import run_figure2

FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_figure2(benchmark, experiment_config):
    result = run_once(benchmark, run_figure2, experiment_config, fractions=FRACTIONS)
    print_block("Figure 2: social cost after workload updates", result.to_text())

    for curve in result.curves:
        series = curve.series()
        baseline = series[0.0]
        # Updates never make the overlay better than the undisturbed ideal.
        assert all(cost >= baseline - 1e-6 for cost in series.values())

    for curve in result.curves:
        if curve.strategy != "selfish":
            continue
        full_change = [point for point in curve.points if point.fraction == 1.0][0]
        # A complete workload change is worth reacting to.
        assert full_change.social_cost <= full_change.social_cost_before_maintenance + 1e-9
