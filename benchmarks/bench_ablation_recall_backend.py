"""Ablation — dense recall-matrix evaluation vs the per-query reference.

The individual-cost evaluation is the protocol's hot loop.  This benchmark
times a full sweep of best responses for every peer with (a) the dense
``WeightedRecallMatrix`` backend and (b) the exact per-query reference, and
checks they reach identical decisions.  This is the one bench where the
timing itself (not a table) is the result.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_block
from repro.analysis.reporting import format_table
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, build_scenario, initial_configuration
from repro.game.model import ClusterGame


@pytest.fixture(scope="module")
def discovery_setup(experiment_config):
    data = build_scenario(SCENARIO_SAME_CATEGORY, experiment_config.scenario)
    configuration = initial_configuration(data, "random", seed=experiment_config.seed + 13)
    return experiment_config, data, configuration


def test_matrix_backend_best_responses(benchmark, discovery_setup):
    config, data, configuration = discovery_setup
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha, use_matrix=True)
    game = ClusterGame(cost_model, configuration, allow_new_clusters=False)
    responses = benchmark(game.best_responses)
    assert len(responses) == len(data.network)


def test_reference_backend_best_responses(benchmark, discovery_setup):
    config, data, configuration = discovery_setup
    cost_model = data.network.cost_model(
        theta=config.theta(), alpha=config.alpha, use_matrix=False
    )
    game = ClusterGame(cost_model, configuration, allow_new_clusters=False)
    sample_peers = data.network.peer_ids()[:10]

    def run_sample():
        return {peer_id: game.best_response(peer_id) for peer_id in sample_peers}

    responses = benchmark(run_sample)
    assert len(responses) == len(sample_peers)


def test_backends_agree(benchmark, discovery_setup):
    config, data, configuration = discovery_setup
    fast_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha, use_matrix=True)
    slow_model = data.network.cost_model(
        theta=config.theta(), alpha=config.alpha, use_matrix=False
    )
    fast_game = ClusterGame(fast_model, configuration, allow_new_clusters=False)
    slow_game = ClusterGame(slow_model, configuration, allow_new_clusters=False)

    def compare():
        fast = fast_game.best_responses()
        rows = []
        for peer_id in data.network.peer_ids()[:10]:
            slow = slow_game.best_response(peer_id)
            rows.append((str(peer_id), str(fast[peer_id].best_cluster), str(slow.best_cluster)))
            assert fast[peer_id].best_cluster == slow.best_cluster
            assert fast[peer_id].best_cost == pytest.approx(slow.best_cost)
        return rows

    rows = benchmark.pedantic(compare, iterations=1, rounds=1)
    print_block(
        "Ablation: recall backends agree (sample of peers)",
        format_table(("peer", "matrix backend", "reference backend"), rows),
    )
