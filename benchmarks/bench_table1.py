"""Table 1 — rounds to equilibrium, #clusters, SCost and WCost.

Regenerates the paper's Table 1: three data/query scenarios x four initial
configurations x {selfish, altruistic}.  Expected shape: the same-category
scenario converges quickly to ``M`` clusters with SCost = WCost = 1/M; the
different-category scenario needs more rounds and keeps a non-zero recall
loss; the uniform scenario does not converge and costs the most.
"""

from __future__ import annotations

from benchmarks.conftest import print_block, run_once
from repro.experiments.table1 import run_table1


def test_table1(benchmark, experiment_config):
    result = run_once(benchmark, run_table1, experiment_config)
    print_block("Table 1: fixed query workload and content", result.to_text())

    same_category_rows = result.rows_for("same-category")
    assert same_category_rows, "the same-category scenario must be part of Table 1"
    ideal = 1.0 / experiment_config.scenario.num_categories
    selfish_rows = [row for row in same_category_rows if row.strategy == "selfish"]
    # The paper's headline: the selfish strategy converges to the desired
    # number of clusters with the membership-only cost.
    assert any(row.converged for row in selfish_rows)
    assert any(abs(row.social_cost - ideal) < 0.05 for row in selfish_rows)

    uniform_rows = result.rows_for("uniform")
    if uniform_rows:
        # The uniform scenario is the hardest: its cost always exceeds the ideal.
        assert min(row.social_cost for row in uniform_rows) > ideal
