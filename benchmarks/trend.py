"""Benchmark trend comparison: fail CI on significant regressions.

Compares two ``pytest-benchmark`` JSON files (the previous run's artifact
vs the current run's output) benchmark-by-benchmark and reports every test
whose time regressed beyond a threshold::

    python -m benchmarks.trend previous/BENCH_smoke.json BENCH_smoke.json \
        --max-regression 25

The compared statistic is each benchmark's ``min`` round time (falling back
to ``mean`` for files that lack it): on shared CI runners the minimum is far
less noisy than the mean, so a hard gate on it stays meaningful.  Numeric
``extra_info`` metrics (e.g. ``peak_rss_mb``) are compared too, as
``<benchmark name>::<metric>`` entries — so the gate covers memory as well
as time wherever a benchmark records it.

Exit status is 1 when at least one benchmark regressed by more than
``--max-regression`` percent.  A missing/unreadable *previous* file — the
first run of a repository, an expired artifact — passes with a note, so the
trend job never blocks bootstrapping.  Benchmarks (or metrics) present on
only one side are reported but never fail the check — renames, new benches
and newly recorded metrics are normal and must not fail against an older
baseline that lacks them.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional

__all__ = ["load_benchmark_means", "compare_benchmarks", "Comparison", "main"]


class Comparison(NamedTuple):
    """Outcome of comparing one benchmark between two runs."""

    name: str
    previous_mean: Optional[float]
    current_mean: Optional[float]

    @property
    def ratio(self) -> Optional[float]:
        """``current / previous`` mean-time ratio (>1 = slower), when both sides exist."""
        if not self.previous_mean or self.current_mean is None:
            return None
        return self.current_mean / self.previous_mean

    def regressed(self, max_regression_percent: float) -> bool:
        """Whether this benchmark slowed down beyond the threshold."""
        ratio = self.ratio
        return ratio is not None and ratio > 1.0 + max_regression_percent / 100.0


def load_benchmark_means(path: Path) -> Dict[str, float]:
    """``{benchmark name: seconds}`` from a pytest-benchmark JSON file.

    Prefers each benchmark's ``min`` round time — the statistic least
    sensitive to shared-runner noise — and falls back to ``mean`` when a
    file lacks it.  Numeric ``extra_info`` values are added under
    ``<name>::<metric>`` so memory (and any other recorded metric) is
    trend-gated alongside time.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    means: Dict[str, float] = {}
    for entry in payload.get("benchmarks", []):
        name = str(entry.get("fullname") or entry.get("name"))
        stats = entry.get("stats") or {}
        value = stats.get("min", stats.get("mean"))
        if value is not None:
            means[name] = float(value)
        extra = entry.get("extra_info") or {}
        for metric, metric_value in extra.items():
            if isinstance(metric_value, bool) or not isinstance(metric_value, (int, float)):
                continue
            means[f"{name}::{metric}"] = float(metric_value)
    return means


def compare_benchmarks(
    previous: Dict[str, float], current: Dict[str, float]
) -> List[Comparison]:
    """Pair up benchmarks by name (sorted), keeping one-sided entries visible."""
    names = sorted(set(previous) | set(current))
    return [
        Comparison(name=name, previous_mean=previous.get(name), current_mean=current.get(name))
        for name in names
    ]


def _format_row(comparison: Comparison) -> str:
    is_metric = "::" in comparison.name  # extra_info metric, not a round time

    def fmt(value: Optional[float]) -> str:
        if value is None:
            return "-"
        return f"{value:.2f}" if is_metric else f"{value * 1000:.2f}ms"

    ratio = comparison.ratio
    ratio_text = f"{ratio:.2f}x" if ratio is not None else "-"
    return f"  {comparison.name}: {fmt(comparison.previous_mean)} -> {fmt(comparison.current_mean)} ({ratio_text})"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("previous", type=Path, help="previous run's benchmark JSON")
    parser.add_argument("current", type=Path, help="current run's benchmark JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=25.0,
        metavar="PERCENT",
        help="fail when a benchmark's mean slows down by more than this (default: 25)",
    )
    args = parser.parse_args(argv)

    try:
        current = load_benchmark_means(args.current)
    except (OSError, ValueError) as error:
        print(f"trend: cannot read current results {args.current}: {error}")
        return 1
    try:
        previous = load_benchmark_means(args.previous)
    except (OSError, ValueError) as error:
        print(f"trend: no usable previous results ({error}); skipping comparison")
        return 0

    comparisons = compare_benchmarks(previous, current)
    regressions = [c for c in comparisons if c.regressed(args.max_regression)]
    print(
        f"trend: {len(comparisons)} benchmark(s), threshold +{args.max_regression:g}% "
        f"({args.previous} -> {args.current})"
    )
    for comparison in comparisons:
        marker = "  REGRESSION" if comparison in regressions else ""
        print(_format_row(comparison) + marker)
    if regressions:
        print(f"trend: {len(regressions)} benchmark(s) regressed beyond the threshold")
        return 1
    print("trend: no regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
