"""Ablation — the gain threshold ε used as the protocol's stop condition.

The paper uses ε = 0.001 for the maintenance experiments.  This ablation
sweeps ε on the scenario-1 discovery run: a larger threshold stops the
protocol earlier (fewer rounds and moves) at the price of a higher final
social cost.
"""

from __future__ import annotations

from benchmarks.conftest import print_block, run_once
from repro.analysis.reporting import format_table
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, build_scenario, initial_configuration
from repro.protocol.reformulation import ReformulationProtocol
from repro.strategies.selfish import SelfishStrategy

THRESHOLDS = (0.0, 0.001, 0.01, 0.05, 0.2)


def run_threshold_ablation(config):
    rows = []
    for threshold in THRESHOLDS:
        data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
        configuration = initial_configuration(data, "random", seed=config.seed + 13)
        cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
        protocol = ReformulationProtocol(
            cost_model, configuration, SelfishStrategy(), gain_threshold=threshold
        )
        result = protocol.run(max_rounds=config.max_rounds)
        rows.append(
            (
                threshold,
                result.num_rounds,
                result.total_moves,
                round(result.final_social_cost, 3),
            )
        )
    return rows


def test_ablation_threshold(benchmark, experiment_config):
    rows = run_once(benchmark, run_threshold_ablation, experiment_config)
    print_block(
        "Ablation: gain threshold epsilon (scenario 1, selfish, from random clusters)",
        format_table(("epsilon", "# rounds", "# moves", "SCost"), rows),
    )
    by_threshold = {row[0]: row for row in rows}
    # A permissive threshold never does worse than a very strict one.
    assert by_threshold[0.0][3] <= by_threshold[0.2][3] + 1e-9
    # A very strict threshold performs fewer (or equal) moves.
    assert by_threshold[0.2][2] <= by_threshold[0.0][2]
