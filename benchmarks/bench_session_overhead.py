"""Facade overhead — `Simulation.run()` versus a hand-wired protocol run.

The `Simulation` facade assembles exactly the objects the hand-wired
quickstart assembles (same builders, same seeds), so the only cost it can
add is the assembly glue: config resolution, registry lookups and the event
hook plumbing inside the protocol loop.  This bench runs both paths at the
selected scale, checks that they produce the identical converged
configuration, and asserts the facade's wall time stays within noise of the
hand-wired run.

Run with::

    REPRO_BENCH_SCALE=benchmark python benchmarks/bench_session_overhead.py
    pytest benchmarks/bench_session_overhead.py

"""

from __future__ import annotations

import time

from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, build_scenario, initial_configuration
from repro.experiments.config import ExperimentConfig, build_strategy
from repro.protocol.reformulation import ReformulationProtocol
from repro.session import SessionConfig, Simulation

#: The facade may cost at most this factor of the hand-wired wall time.  The
#: protocol rounds dominate both paths; 1.5x plus a small absolute slack keeps
#: the assertion robust on noisy CI boxes while still catching accidental
#: per-round overhead (e.g. quadratic event bookkeeping).
MAX_OVERHEAD_FACTOR = 1.5
ABSOLUTE_SLACK_SECONDS = 0.05
REPETITIONS = 3


def run_hand_wired(config: ExperimentConfig):
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    configuration = initial_configuration(data, "singletons", seed=config.seed + 13)
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
    protocol = ReformulationProtocol(
        cost_model,
        configuration,
        build_strategy("selfish"),
        gain_threshold=config.gain_threshold,
    )
    result = protocol.run(max_rounds=config.max_rounds)
    return result.final_social_cost, configuration.signature()


def run_facade(config: ExperimentConfig):
    simulation = Simulation.from_config(
        SessionConfig.from_experiment_config(
            config, scenario=SCENARIO_SAME_CATEGORY, strategy="selfish", initial="singletons"
        )
    )
    result = simulation.run()
    return result.final_social_cost, simulation.configuration.signature()


def _best_of(callable_, *args, repetitions: int = REPETITIONS):
    best = float("inf")
    value = None
    for _ in range(repetitions):
        start = time.perf_counter()
        value = callable_(*args)
        best = min(best, time.perf_counter() - start)
    return best, value


def test_session_overhead(experiment_config):
    from benchmarks.conftest import print_block

    hand_seconds, hand_outcome = _best_of(run_hand_wired, experiment_config)
    facade_seconds, facade_outcome = _best_of(run_facade, experiment_config)

    assert facade_outcome == hand_outcome, (
        "facade and hand-wired runs diverged — the facade must assemble the "
        "identical session, seed for seed"
    )
    budget = hand_seconds * MAX_OVERHEAD_FACTOR + ABSOLUTE_SLACK_SECONDS
    print_block(
        "Session facade overhead",
        "\n".join(
            [
                f"hand-wired best of {REPETITIONS}: {hand_seconds * 1000:.1f} ms",
                f"facade     best of {REPETITIONS}: {facade_seconds * 1000:.1f} ms",
                f"budget (x{MAX_OVERHEAD_FACTOR} + {ABSOLUTE_SLACK_SECONDS * 1000:.0f} ms): "
                f"{budget * 1000:.1f} ms",
            ]
        ),
    )
    assert facade_seconds <= budget, (
        f"facade run took {facade_seconds:.3f}s versus hand-wired {hand_seconds:.3f}s "
        f"(budget {budget:.3f}s)"
    )


def main() -> int:
    from benchmarks.conftest import bench_scale

    config = ExperimentConfig.from_scale(bench_scale())
    hand_seconds, hand_outcome = _best_of(run_hand_wired, config)
    facade_seconds, facade_outcome = _best_of(run_facade, config)
    matches = facade_outcome == hand_outcome
    print(f"scale: {bench_scale()}")
    print(f"hand-wired best of {REPETITIONS}: {hand_seconds * 1000:.1f} ms")
    print(f"facade     best of {REPETITIONS}: {facade_seconds * 1000:.1f} ms")
    print(f"identical outcome: {matches}")
    overhead = facade_seconds / hand_seconds if hand_seconds else float("inf")
    print(f"overhead factor: {overhead:.3f}x")
    ok = matches and facade_seconds <= hand_seconds * MAX_OVERHEAD_FACTOR + ABSOLUTE_SLACK_SECONDS
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
