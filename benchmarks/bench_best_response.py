"""Benchmark — incremental vectorized kernel vs the legacy best-response loop.

Times best-response dynamics (the protocol's hot loop: score every candidate
cluster for every peer, apply the best deviation, repeat) at 50 / 200 / 500
peers with

* the **kernel** path — :class:`~repro.game.kernel.BestResponseKernel`
  incrementally maintaining the membership/covered-recall caches, and
* the **legacy** path (``use_kernel=False``) — the pre-kernel implementation
  that rebuilds the membership matrix and the ``W @ M`` product every round
  and evaluates the new-cluster option peer by peer.

The speedup/parity test additionally pins the kernel run to the exact
per-query reference cost model (1e-9) and asserts the 200-peer speedup.

**Scaled tier** — the label-vector kernel backend at 5k and 50k peers
(factored recall, no dense |P| x |P| array): a single best-response round is
timed and its peak RSS recorded in ``extra_info`` so the trend job gates
both time *and* memory.  The 5k round (and the >=10x labels-vs-dense
assertion) runs everywhere; the 50k round is opted into with
``REPRO_BENCH_KERNEL_FULL=1`` because its scenario alone takes ~15s to
build.  Peak RSS is ``ru_maxrss`` — a process-wide high-water mark, so it
is monotone across the (deterministically ordered) benchmarks of a run and
comparable between runs.

Run with ``--benchmark-json BENCH_kernel.json`` (CI does) to produce the
artifact the trend job compares across runs.
"""

from __future__ import annotations

import gc
import os
import resource
import time
from contextlib import contextmanager

import pytest

from benchmarks.conftest import print_block
from repro.analysis.reporting import format_table
from repro.datasets.scenarios import (
    SCENARIO_SAME_CATEGORY,
    ScenarioConfig,
    build_scenario,
    initial_configuration,
)
from repro.game.dynamics import run_best_response_dynamics
from repro.game.kernel import BestResponseKernel
from repro.game.model import ClusterGame

#: Population sizes (the paper's experiments use 200).
SIZES = (50, 200, 500)
#: Step budgets keeping the slow legacy path bounded at every size.
MAX_STEPS = {50: 40, 200: 25, 500: 10}

#: Opt-in for the heavy 50k-peer round (see the module docstring).
FULL_ENV = "REPRO_BENCH_KERNEL_FULL"
RUN_FULL = os.environ.get(FULL_ENV, "0").strip().lower() not in ("", "0", "false", "no")

#: Scaled-tier populations and the cluster count peers are spread over.
SCALED_SIZES = (
    pytest.param(5000, id="5000"),
    pytest.param(
        50000,
        id="50000",
        marks=pytest.mark.skipif(not RUN_FULL, reason=f"set {FULL_ENV}=1 to run"),
    ),
)
SCALED_CLUSTERS = {5000: 200, 50000: 500}


def peak_rss_mb() -> float:
    """Process peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@contextmanager
def scenario_frozen():
    """Freeze the long-lived scenario objects out of cyclic GC for a round.

    A 50k-peer scenario holds ~2.5M Python objects; without freezing, every
    gen-2 collection triggered by the round's allocations rescans all of
    them, which dominates (and wildly destabilises) the measured time.  The
    round allocates nothing cyclic, so freezing changes only what is
    measured: the kernel, not the collector.
    """
    gc.collect()
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


def scenario_config(num_peers: int) -> ScenarioConfig:
    return ScenarioConfig(
        num_peers=num_peers,
        num_categories=10,
        documents_per_peer=6,
        terms_per_document=4,
        category_vocabulary_size=40,
        queries_per_peer=4,
        seed=7,
    )


@pytest.fixture(scope="module")
def setups():
    """Scenario/cost-model cache shared by every benchmark in the module."""
    cache = {}

    def get(num_peers: int):
        if num_peers not in cache:
            data = build_scenario(SCENARIO_SAME_CATEGORY, scenario_config(num_peers))
            configuration = initial_configuration(data, "random", seed=20)
            cost_model = data.network.cost_model()
            cache[num_peers] = (data, configuration, cost_model)
        return cache[num_peers]

    return get


def run_dynamics(cost_model, configuration, num_peers: int, *, use_kernel: bool):
    game = ClusterGame(cost_model, configuration.copy(), use_kernel=use_kernel)
    return run_best_response_dynamics(game, max_steps=MAX_STEPS[num_peers])


@pytest.mark.parametrize("num_peers", SIZES)
def test_kernel_best_response_dynamics(benchmark, setups, num_peers):
    _, configuration, cost_model = setups(num_peers)
    result = benchmark.pedantic(
        run_dynamics,
        args=(cost_model, configuration, num_peers),
        kwargs={"use_kernel": True},
        iterations=1,
        rounds=3,
    )
    assert result.num_steps > 0
    benchmark.extra_info["peak_rss_mb"] = round(peak_rss_mb(), 1)


@pytest.mark.parametrize("num_peers", SIZES)
def test_legacy_best_response_dynamics(benchmark, setups, num_peers):
    _, configuration, cost_model = setups(num_peers)
    result = benchmark.pedantic(
        run_dynamics,
        args=(cost_model, configuration, num_peers),
        kwargs={"use_kernel": False},
        iterations=1,
        rounds=2,
    )
    assert result.num_steps > 0


def test_kernel_speedup_and_exact_parity(benchmark, setups):
    """200-peer dynamics: kernel >= 5x the legacy loop, costs == exact reference."""
    num_peers = 200
    data, configuration, cost_model = setups(num_peers)

    def timed(use_kernel: bool):
        started = time.perf_counter()
        result = run_dynamics(cost_model, configuration, num_peers, use_kernel=use_kernel)
        return result, time.perf_counter() - started

    def compare():
        kernel_result, kernel_seconds = timed(True)
        legacy_result, legacy_seconds = timed(False)
        return kernel_result, kernel_seconds, legacy_result, legacy_seconds

    kernel_result, kernel_seconds, legacy_result, legacy_seconds = benchmark.pedantic(
        compare, iterations=1, rounds=1
    )

    # Identical decisions, step by step.
    assert [(s.peer_id, s.from_cluster, s.to_cluster) for s in kernel_result.steps] == [
        (s.peer_id, s.from_cluster, s.to_cluster) for s in legacy_result.steps
    ]
    for kernel_cost, legacy_cost in zip(
        kernel_result.social_cost_trace, legacy_result.social_cost_trace
    ):
        assert kernel_cost == pytest.approx(legacy_cost, abs=1e-9)

    # The kernel's final cost matches the exact per-query reference model.
    final_configuration = configuration.copy()
    kernel_game = ClusterGame(cost_model, final_configuration)
    replay = run_best_response_dynamics(kernel_game, max_steps=MAX_STEPS[num_peers])
    exact_model = data.network.cost_model(use_matrix=False)
    exact_cost = exact_model.social_cost(final_configuration, normalized=True)
    assert replay.social_cost_trace[-1] == pytest.approx(exact_cost, abs=1e-9)

    speedup = legacy_seconds / kernel_seconds
    print_block(
        "Kernel vs legacy best-response dynamics (200 peers)",
        format_table(
            ("path", "seconds", "steps"),
            (
                ("legacy loop", f"{legacy_seconds:.3f}", str(legacy_result.num_steps)),
                ("kernel", f"{kernel_seconds:.3f}", str(kernel_result.num_steps)),
                ("speedup", f"{speedup:.1f}x", ""),
            ),
        ),
    )
    assert speedup >= 5.0, f"expected >=5x kernel speedup, measured {speedup:.1f}x"


# -- scaled tier: label-vector backend at 5k / 50k peers -------------------------


@pytest.fixture(scope="module")
def scaled_setups():
    """Per-size cache of (configuration, factored cost model) for the scaled tier.

    The cost model keeps the recall matrix in factored form — no dense
    |P| x |P| array exists anywhere on the labels path, which is what makes
    the 50k round feasible (a dense W alone would be 20 GB).
    """
    cache = {}

    def get(num_peers: int):
        if num_peers not in cache:
            data = build_scenario(SCENARIO_SAME_CATEGORY, scenario_config(num_peers))
            configuration = initial_configuration(
                data, "random", num_clusters=SCALED_CLUSTERS[num_peers], seed=20
            )
            cost_model = data.network.cost_model(matrix_mode="factored")
            cache[num_peers] = (configuration, cost_model)
        return cache[num_peers]

    return get


def labels_round(cost_model, configuration, *, backend: str = "labels"):
    """One best-response round: score every nonempty cluster for every peer."""
    kernel = BestResponseKernel(cost_model, configuration, backend=backend)
    responses, fallback = kernel.best_response_all(
        candidate_clusters=configuration.nonempty_clusters()
    )
    kernel.detach()
    return responses, fallback


@pytest.mark.parametrize("num_peers", SCALED_SIZES)
def test_labels_kernel_round_scaled(benchmark, scaled_setups, num_peers):
    """A full best-response round under the labels backend, time + peak RSS."""
    configuration, cost_model = scaled_setups(num_peers)
    with scenario_frozen():
        responses, _ = benchmark.pedantic(
            labels_round,
            args=(cost_model, configuration),
            iterations=1,
            rounds=3 if num_peers <= 5000 else 1,
        )
    assert len(responses) == num_peers
    benchmark.extra_info["num_peers"] = num_peers
    benchmark.extra_info["peak_rss_mb"] = round(peak_rss_mb(), 1)


def test_labels_vs_dense_round_5k(benchmark, scaled_setups):
    """5k-peer round: the labels backend must beat the dense backend >=10x.

    The dense backend's round cost is dominated by rebuilding ``W @ M`` over
    every cluster slot (and by materialising the dense |P| x |P| weights);
    the labels backend touches only per-cluster segments of the factored
    recall, so the gap widens with population.
    """
    num_peers = 5000
    configuration, cost_model = scaled_setups(num_peers)

    def compare():
        started = time.perf_counter()
        labels_responses, _ = labels_round(cost_model, configuration)
        labels_seconds = time.perf_counter() - started
        started = time.perf_counter()
        dense_responses, _ = labels_round(cost_model, configuration, backend="dense")
        dense_seconds = time.perf_counter() - started
        return labels_responses, labels_seconds, dense_responses, dense_seconds

    with scenario_frozen():
        labels_responses, labels_seconds, dense_responses, dense_seconds = (
            benchmark.pedantic(compare, iterations=1, rounds=1)
        )

    # Same decisions from both backends.
    assert set(labels_responses) == set(dense_responses)
    for peer_id, response in labels_responses.items():
        assert response.best_cost == pytest.approx(
            dense_responses[peer_id].best_cost, abs=1e-9
        )

    speedup = dense_seconds / labels_seconds
    print_block(
        "Labels vs dense kernel backend (5000 peers, one round)",
        format_table(
            ("backend", "seconds"),
            (
                ("dense", f"{dense_seconds:.3f}"),
                ("labels", f"{labels_seconds:.3f}"),
                ("speedup", f"{speedup:.1f}x"),
            ),
        ),
    )
    # Only lower-is-better metrics go to extra_info: the trend gate treats
    # any >threshold increase as a regression, which would misfire on an
    # *improved* speedup.
    benchmark.extra_info["peak_rss_mb"] = round(peak_rss_mb(), 1)
    assert speedup >= 10.0, f"expected >=10x labels speedup, measured {speedup:.1f}x"
