"""Benchmark — incremental vectorized kernel vs the legacy best-response loop.

Times best-response dynamics (the protocol's hot loop: score every candidate
cluster for every peer, apply the best deviation, repeat) at 50 / 200 / 500
peers with

* the **kernel** path — :class:`~repro.game.kernel.BestResponseKernel`
  incrementally maintaining the membership/covered-recall caches, and
* the **legacy** path (``use_kernel=False``) — the pre-kernel implementation
  that rebuilds the membership matrix and the ``W @ M`` product every round
  and evaluates the new-cluster option peer by peer.

The speedup/parity test additionally pins the kernel run to the exact
per-query reference cost model (1e-9) and asserts the 200-peer speedup.

Run with ``--benchmark-json BENCH_kernel.json`` (CI does) to produce the
artifact the trend job compares across runs.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_block
from repro.analysis.reporting import format_table
from repro.datasets.scenarios import (
    SCENARIO_SAME_CATEGORY,
    ScenarioConfig,
    build_scenario,
    initial_configuration,
)
from repro.game.dynamics import run_best_response_dynamics
from repro.game.model import ClusterGame

#: Population sizes (the paper's experiments use 200).
SIZES = (50, 200, 500)
#: Step budgets keeping the slow legacy path bounded at every size.
MAX_STEPS = {50: 40, 200: 25, 500: 10}


def scenario_config(num_peers: int) -> ScenarioConfig:
    return ScenarioConfig(
        num_peers=num_peers,
        num_categories=10,
        documents_per_peer=6,
        terms_per_document=4,
        category_vocabulary_size=40,
        queries_per_peer=4,
        seed=7,
    )


@pytest.fixture(scope="module")
def setups():
    """Scenario/cost-model cache shared by every benchmark in the module."""
    cache = {}

    def get(num_peers: int):
        if num_peers not in cache:
            data = build_scenario(SCENARIO_SAME_CATEGORY, scenario_config(num_peers))
            configuration = initial_configuration(data, "random", seed=20)
            cost_model = data.network.cost_model()
            cache[num_peers] = (data, configuration, cost_model)
        return cache[num_peers]

    return get


def run_dynamics(cost_model, configuration, num_peers: int, *, use_kernel: bool):
    game = ClusterGame(cost_model, configuration.copy(), use_kernel=use_kernel)
    return run_best_response_dynamics(game, max_steps=MAX_STEPS[num_peers])


@pytest.mark.parametrize("num_peers", SIZES)
def test_kernel_best_response_dynamics(benchmark, setups, num_peers):
    _, configuration, cost_model = setups(num_peers)
    result = benchmark.pedantic(
        run_dynamics,
        args=(cost_model, configuration, num_peers),
        kwargs={"use_kernel": True},
        iterations=1,
        rounds=3,
    )
    assert result.num_steps > 0


@pytest.mark.parametrize("num_peers", SIZES)
def test_legacy_best_response_dynamics(benchmark, setups, num_peers):
    _, configuration, cost_model = setups(num_peers)
    result = benchmark.pedantic(
        run_dynamics,
        args=(cost_model, configuration, num_peers),
        kwargs={"use_kernel": False},
        iterations=1,
        rounds=2,
    )
    assert result.num_steps > 0


def test_kernel_speedup_and_exact_parity(benchmark, setups):
    """200-peer dynamics: kernel >= 5x the legacy loop, costs == exact reference."""
    num_peers = 200
    data, configuration, cost_model = setups(num_peers)

    def timed(use_kernel: bool):
        started = time.perf_counter()
        result = run_dynamics(cost_model, configuration, num_peers, use_kernel=use_kernel)
        return result, time.perf_counter() - started

    def compare():
        kernel_result, kernel_seconds = timed(True)
        legacy_result, legacy_seconds = timed(False)
        return kernel_result, kernel_seconds, legacy_result, legacy_seconds

    kernel_result, kernel_seconds, legacy_result, legacy_seconds = benchmark.pedantic(
        compare, iterations=1, rounds=1
    )

    # Identical decisions, step by step.
    assert [(s.peer_id, s.from_cluster, s.to_cluster) for s in kernel_result.steps] == [
        (s.peer_id, s.from_cluster, s.to_cluster) for s in legacy_result.steps
    ]
    for kernel_cost, legacy_cost in zip(
        kernel_result.social_cost_trace, legacy_result.social_cost_trace
    ):
        assert kernel_cost == pytest.approx(legacy_cost, abs=1e-9)

    # The kernel's final cost matches the exact per-query reference model.
    final_configuration = configuration.copy()
    kernel_game = ClusterGame(cost_model, final_configuration)
    replay = run_best_response_dynamics(kernel_game, max_steps=MAX_STEPS[num_peers])
    exact_model = data.network.cost_model(use_matrix=False)
    exact_cost = exact_model.social_cost(final_configuration, normalized=True)
    assert replay.social_cost_trace[-1] == pytest.approx(exact_cost, abs=1e-9)

    speedup = legacy_seconds / kernel_seconds
    print_block(
        "Kernel vs legacy best-response dynamics (200 peers)",
        format_table(
            ("path", "seconds", "steps"),
            (
                ("legacy loop", f"{legacy_seconds:.3f}", str(legacy_result.num_steps)),
                ("kernel", f"{kernel_seconds:.3f}", str(kernel_result.num_steps)),
                ("speedup", f"{speedup:.1f}x", ""),
            ),
        ),
    )
    assert speedup >= 5.0, f"expected >=5x kernel speedup, measured {speedup:.1f}x"
