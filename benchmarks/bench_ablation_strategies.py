"""Ablation — selfish vs altruistic vs hybrid vs the non-recall baselines.

Runs the scenario-1 discovery from a random configuration with every
relocation strategy plus the baselines (static, random relocation, global
re-clustering) and reports the final social cost, cluster purity and the
number of protocol messages — the trade-off the paper's introduction appeals
to (local decisions vs global knowledge).
"""

from __future__ import annotations

from benchmarks.conftest import print_block, run_once
from repro.analysis.metrics import cluster_purity
from repro.analysis.reporting import format_table
from repro.baselines.global_reclustering import GlobalReclustering
from repro.baselines.random_relocation import RandomRelocationStrategy
from repro.baselines.static import StaticStrategy
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, build_scenario, initial_configuration
from repro.experiments.config import build_strategy
from repro.overlay.messages import MessageBus
from repro.protocol.reformulation import ReformulationProtocol

PROTOCOL_STRATEGIES = (
    ("selfish", lambda: build_strategy("selfish")),
    ("altruistic", lambda: build_strategy("altruistic")),
    ("hybrid(0.5)", lambda: build_strategy("hybrid", weight=0.5)),
    ("random relocation", lambda: RandomRelocationStrategy(move_probability=0.2, seed=3)),
    ("static (no maintenance)", lambda: StaticStrategy()),
)


def run_strategy_ablation(config):
    rows = []
    for label, factory in PROTOCOL_STRATEGIES:
        data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
        configuration = initial_configuration(data, "random", seed=config.seed + 13)
        cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
        bus = MessageBus()
        protocol = ReformulationProtocol(cost_model, configuration, factory(), bus=bus)
        result = protocol.run(max_rounds=min(config.max_rounds, 60))
        rows.append(
            (
                label,
                round(result.final_social_cost, 3),
                round(cluster_purity(configuration, data.data_categories), 3),
                configuration.num_nonempty_clusters(),
                bus.total(),
            )
        )

    # Global re-clustering baseline: centralised, needs global knowledge.
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
    bus = MessageBus()
    reclustered = GlobalReclustering(
        num_clusters=config.scenario.num_categories, seed=config.seed
    ).recluster(data.network, bus=bus)
    rows.append(
        (
            "global re-clustering",
            round(cost_model.social_cost(reclustered.configuration, normalized=True), 3),
            round(cluster_purity(reclustered.configuration, data.data_categories), 3),
            reclustered.configuration.num_nonempty_clusters(),
            bus.total(),
        )
    )
    return rows


def test_ablation_strategies(benchmark, experiment_config):
    rows = run_once(benchmark, run_strategy_ablation, experiment_config)
    print_block(
        "Ablation: strategies and baselines (scenario 1, from random clusters)",
        format_table(("strategy", "SCost", "purity", "# clusters", "messages"), rows),
    )
    by_label = {row[0]: row for row in rows}
    # Recall-driven local maintenance beats doing nothing...
    assert by_label["selfish"][1] < by_label["static (no maintenance)"][1]
    # ...and beats random shuffling.
    assert by_label["selfish"][1] <= by_label["random relocation"][1] + 1e-9
    # The selfish strategy approaches the quality of centralised re-clustering.
    assert by_label["selfish"][1] <= by_label["global re-clustering"][1] + 0.1
