"""Distributed sweep backend — queue overhead and scaling vs process-pool.

Two measurements:

* **Queue lifecycle on a multi-thousand-task grid** — the coordination
  fabric alone: enqueue 2048 real task entries, claim each one through the
  atomic rename protocol, release the lease, with the coordinator-style
  directory scans in between.  No task executes, so the timing is pure
  per-task overhead of the filesystem queue — the cost the distributed
  backend adds over handing the same tasks to an in-process pool.
* **Distributed vs process-pool on a real grid** — the CI smoke grid run
  end-to-end through ``process-pool`` and through ``distributed`` with the
  same worker count (spawned daemon processes, store-backed), asserting
  byte-identical payloads and recording the coordinator's wall-clock
  overhead.

Run with::

    pytest benchmarks/bench_sweep_distributed.py -q \
        --benchmark-json BENCH_sweep_distributed.json

"""

from __future__ import annotations

import time

from repro.sweep import ResultStore, SweepSpec, run_sweep
from repro.sweep.queue import QueueEntry, TaskQueue
from repro.sweep.store import task_hash

TINY_SCENARIO = {
    "num_peers": 12,
    "num_categories": 3,
    "documents_per_peer": 4,
    "terms_per_document": 3,
    "category_vocabulary_size": 15,
    "queries_per_peer": 3,
}

#: The synthetic grid the queue-lifecycle bench pushes through the fabric.
QUEUE_GRID_TASKS = 2048


def queue_grid_tasks():
    """A real ≥2000-task expansion (one strategy, many derived seeds)."""
    spec = SweepSpec(
        strategies=("selfish",),
        scale="quick",
        overrides={"scenario_overrides": dict(TINY_SCENARIO)},
        replications=QUEUE_GRID_TASKS,
    )
    return spec.validate()


def smoke_spec() -> SweepSpec:
    """The CI smoke grid: 2 strategies x 2 initials x 2 seeds = 8 tasks."""
    return SweepSpec(
        strategies=("selfish", "altruistic"),
        initials=("singletons", "random"),
        scale="quick",
        overrides={"scenario_overrides": dict(TINY_SCENARIO)},
        seeds=(7, 11),
    )


def payload(sweep_result):
    return [result.to_dict() for result in sweep_result.results]


def test_queue_lifecycle_multithousand_grid(benchmark, tmp_path):
    from benchmarks.conftest import print_block

    tasks = queue_grid_tasks()
    assert len(tasks) >= 2000
    entries = [
        QueueEntry(task=task.to_dict(), task_hash=task_hash(task), index=task.index)
        for task in tasks
    ]

    def lifecycle():
        queue = TaskQueue(tmp_path / f"store-{time.monotonic_ns()}")
        enqueue_start = time.perf_counter()
        for entry in entries:
            queue.enqueue(entry)
        enqueue_seconds = time.perf_counter() - enqueue_start
        claim_start = time.perf_counter()
        claimed = 0
        order_ok = True
        expected = 0
        while True:
            lease = queue.claim("bench-worker")
            if lease is None:
                break
            order_ok = order_ok and lease.entry.index == expected
            expected += 1
            claimed += 1
            lease.renew()
            lease.release()
        claim_seconds = time.perf_counter() - claim_start
        scan_start = time.perf_counter()
        status = queue.status(ResultStore(queue.store_root))
        scan_seconds = time.perf_counter() - scan_start
        assert claimed == len(entries)
        assert order_ok, "claims must arrive in task-index order"
        assert status.pending == 0 and status.claimed == 0
        return enqueue_seconds, claim_seconds, scan_seconds

    enqueue_seconds, claim_seconds, scan_seconds = benchmark.pedantic(
        lifecycle, iterations=1, rounds=1
    )
    total = enqueue_seconds + claim_seconds
    per_task_us = total / len(entries) * 1e6
    benchmark.extra_info["tasks"] = len(entries)
    benchmark.extra_info["per_task_overhead_us"] = round(per_task_us, 1)
    benchmark.extra_info["enqueue_seconds"] = round(enqueue_seconds, 3)
    benchmark.extra_info["claim_release_seconds"] = round(claim_seconds, 3)
    print_block(
        "Distributed queue lifecycle",
        "\n".join(
            [
                f"tasks enqueued + claimed + released: {len(entries)}",
                f"enqueue: {enqueue_seconds:.3f} s",
                f"claim/renew/release: {claim_seconds:.3f} s",
                f"status scan: {scan_seconds * 1000:.1f} ms",
                f"per-task queue overhead: {per_task_us:.0f} us",
            ]
        ),
    )


def test_distributed_vs_process_pool_smoke_grid(benchmark, tmp_path):
    from benchmarks.conftest import print_block

    spec = smoke_spec()
    reference = run_sweep(spec)

    pool_start = time.perf_counter()
    pool = run_sweep(
        spec, executor={"name": "process-pool", "options": {"max_workers": 2}}
    )
    pool_seconds = time.perf_counter() - pool_start

    def distributed_run():
        return run_sweep(
            spec,
            executor={
                "name": "distributed",
                "options": {"workers": 2, "lease_timeout": 30, "poll_interval": 0.02},
            },
            store=str(tmp_path / "store"),
        )

    distributed_start = time.perf_counter()
    distributed = benchmark.pedantic(distributed_run, iterations=1, rounds=1)
    distributed_seconds = time.perf_counter() - distributed_start

    assert payload(distributed) == payload(reference)
    assert payload(pool) == payload(reference)

    overhead = distributed_seconds - pool_seconds
    benchmark.extra_info["tasks"] = len(reference.tasks)
    benchmark.extra_info["process_pool_seconds"] = round(pool_seconds, 3)
    benchmark.extra_info["distributed_seconds"] = round(distributed_seconds, 3)
    benchmark.extra_info["coordinator_overhead_seconds"] = round(overhead, 3)
    print_block(
        "Distributed vs process-pool (8-task smoke grid, 2 workers)",
        "\n".join(
            [
                f"serial-identical payloads: yes ({len(reference.tasks)} tasks)",
                f"process-pool(2): {pool_seconds:.2f} s",
                f"distributed(2):  {distributed_seconds:.2f} s",
                f"coordinator + daemon-spawn overhead: {overhead:+.2f} s",
            ]
        ),
    )
