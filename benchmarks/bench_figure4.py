"""Figure 4 — influence of alpha on a single selfish peer.

Expected shape: for every fraction of changed workload the individual cost
grows with alpha, and the fraction at which relocating to the (larger) target
cluster first pays off shifts right as alpha grows.
"""

from __future__ import annotations

from benchmarks.conftest import print_block, run_once
from repro.experiments.figure4 import run_figure4

FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
ALPHAS = (0.0, 1.0, 2.0)


def test_figure4(benchmark, experiment_config):
    result = run_once(
        benchmark, run_figure4, experiment_config, alphas=ALPHAS, fractions=FRACTIONS
    )
    print_block("Figure 4: influence of alpha", result.to_text())

    # Larger alpha, larger cost at every point of the sweep.
    for fraction in FRACTIONS:
        costs = [result.curve_for(alpha).series()[fraction] for alpha in ALPHAS]
        assert costs == sorted(costs)

    # Larger alpha needs a larger workload change before relocation pays off.
    relocation_points = [
        result.curve_for(alpha).relocation_fraction
        if result.curve_for(alpha).relocation_fraction is not None
        else 2.0
        for alpha in ALPHAS
    ]
    assert relocation_points == sorted(relocation_points)
