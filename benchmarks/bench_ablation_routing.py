"""Ablation — broadcast routing vs probe-k routing for the observed strategies.

The paper notes that the cluster recall a peer observes depends on the
routing algorithm.  This ablation runs one observation period with broadcast
routing and with probe-k routing (k = 1, 2, 4), then measures how often the
*observed* selfish decision matches the exact (global-knowledge) decision,
and how many query/result messages each routing policy costs.
"""

from __future__ import annotations

from benchmarks.conftest import print_block, run_once
from repro.analysis.reporting import format_table
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, build_scenario, initial_configuration
from repro.game.model import ClusterGame
from repro.overlay.routing import BroadcastRouter, ProbeKRouter
from repro.overlay.simulator import OverlaySimulator
from repro.strategies.base import StrategyContext
from repro.strategies.selfish import SelfishStrategy


def run_routing_ablation(config):
    data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
    configuration = initial_configuration(data, "random", seed=config.seed + 13)
    cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
    game = ClusterGame(cost_model, configuration, allow_new_clusters=False)
    exact_strategy = SelfishStrategy(mode="exact")
    observed_strategy = SelfishStrategy(mode="observed")
    exact_context = StrategyContext(game=game)
    exact_targets = {
        peer_id: exact_strategy.propose(peer_id, exact_context).target_cluster
        for peer_id in data.peer_ids()
    }

    routers = [("broadcast", lambda network: BroadcastRouter(network))]
    for k in (1, 2, 4):
        routers.append((f"probe-{k}", lambda network, k=k: ProbeKRouter(network, k=k)))

    rows = []
    for label, factory in routers:
        simulator = OverlaySimulator(data.network, configuration, router=factory(data.network))
        report = simulator.run_period()
        context = StrategyContext(game=game, statistics=simulator.statistics)
        agreements = sum(
            1
            for peer_id in data.peer_ids()
            if observed_strategy.propose(peer_id, context).target_cluster
            == exact_targets[peer_id]
        )
        rows.append(
            (
                label,
                f"{agreements}/{len(data.peer_ids())}",
                report.messages.get("QueryMessage", 0),
                report.messages.get("ResultMessage", 0),
            )
        )
    return rows


def test_ablation_routing(benchmark, experiment_config):
    rows = run_once(benchmark, run_routing_ablation, experiment_config)
    print_block(
        "Ablation: routing policy vs observed-decision quality",
        format_table(
            ("routing", "observed = exact decisions", "query messages", "result messages"), rows
        ),
    )
    by_label = {row[0]: row for row in rows}
    # Broadcast sees everything, so it agrees at least as often as probe-1...
    broadcast_agreement = int(by_label["broadcast"][1].split("/")[0])
    probe1_agreement = int(by_label["probe-1"][1].split("/")[0])
    assert broadcast_agreement >= probe1_agreement
    # ...but probe-1 is much cheaper in query messages.
    assert by_label["probe-1"][2] < by_label["broadcast"][2]
