"""Benchmark — 100k queries against a 200-peer clustered overlay.

Times the :class:`~repro.traffic.simulator.TrafficSimulator` serving a
100 000-event uniform workload against the paper's 200-peer same-category
setting (ground-truth clustering), once with the broadcast router and once
with ``probe-k`` — the batched ``R @ M`` routing path end to end, including
workload generation and the heap-ordered event loop.

The speedup test also routes one observation period through the legacy
per-query :class:`~repro.overlay.simulator.OverlaySimulator` and records the
per-query cost ratio in the benchmark JSON (``extra_info``): the vectorised
replay must be at least 10x faster per query than the Python-loop baseline.

Run with ``--benchmark-json BENCH_traffic.json`` (CI does) to produce the
artifact the trend job compares across runs.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_block
from repro.analysis.reporting import format_table
from repro.datasets.scenarios import (
    SCENARIO_SAME_CATEGORY,
    ScenarioConfig,
    build_scenario,
    initial_configuration,
)
from repro.overlay.routing import ProbeKRouter
from repro.overlay.simulator import OverlaySimulator
from repro.traffic.simulator import TrafficSimulator

#: The paper's evaluation population.
NUM_PEERS = 200
#: Events per replay — large enough that per-event Python work would dominate.
NUM_EVENTS = 100_000

SCENARIO = ScenarioConfig(
    num_peers=NUM_PEERS,
    num_categories=10,
    documents_per_peer=8,
    queries_per_peer=5,
    uniform_workload=True,
)


@pytest.fixture(scope="module")
def overlay():
    """The 200-peer same-category network on its ground-truth clustering."""
    data = build_scenario(SCENARIO_SAME_CATEGORY, SCENARIO)
    return data.network, initial_configuration(data, "category")


def replay(network, configuration, router=None):
    simulator = TrafficSimulator(
        network, configuration, router=router, keep_log=False
    )
    return simulator.run(num_events=NUM_EVENTS, workload="uniform", seed=0)


def test_traffic_broadcast_100k(benchmark, overlay):
    """The trend-tracked measurement: 100k broadcast queries at 200 peers."""
    network, configuration = overlay
    report = benchmark.pedantic(
        lambda: replay(network, configuration), iterations=1, rounds=3
    )
    assert report.events == NUM_EVENTS
    assert report.recall.mean > 0
    benchmark.extra_info["events"] = report.events
    benchmark.extra_info["query_messages"] = report.query_messages


def test_traffic_probe_k_100k(benchmark, overlay):
    """Same replay through the probe-k router (3 clusters per query)."""
    network, configuration = overlay
    report = benchmark.pedantic(
        lambda: replay(network, configuration, ProbeKRouter(network, k=3)),
        iterations=1,
        rounds=3,
    )
    assert report.events == NUM_EVENTS
    benchmark.extra_info["events"] = report.events
    benchmark.extra_info["query_messages"] = report.query_messages


def test_traffic_speedup_vs_legacy(benchmark, overlay):
    """Acceptance: >=10x faster per query than the legacy per-query loop."""
    network, configuration = overlay
    legacy = OverlaySimulator(network, configuration)
    started = time.perf_counter()
    period = legacy.run_period()
    legacy_seconds = time.perf_counter() - started
    legacy_per_query = legacy_seconds / period.queries_routed

    report = benchmark.pedantic(
        lambda: replay(network, configuration), iterations=1, rounds=3
    )
    traffic_per_query = report.wall_seconds / report.events
    speedup = legacy_per_query / traffic_per_query

    benchmark.extra_info["legacy_queries"] = period.queries_routed
    benchmark.extra_info["legacy_us_per_query"] = legacy_per_query * 1e6
    benchmark.extra_info["traffic_us_per_query"] = traffic_per_query * 1e6
    benchmark.extra_info["speedup_vs_legacy"] = speedup

    print_block(
        f"Traffic replay vs legacy per-query routing ({NUM_PEERS} peers)",
        format_table(
            ("path", "queries", "us / query"),
            [
                ("OverlaySimulator.run_period", period.queries_routed,
                 f"{legacy_per_query * 1e6:.1f}"),
                ("TrafficSimulator (broadcast)", report.events,
                 f"{traffic_per_query * 1e6:.2f}"),
                ("speedup", "", f"{speedup:.1f}x"),
            ],
        ),
    )
    assert report.wall_seconds < 10.0, "100k events must finish in single-digit seconds"
    assert speedup >= 10.0, f"expected >=10x over the legacy loop, got {speedup:.1f}x"
