"""Ablation — the cycle-avoiding lock rule of the reformulation protocol.

The paper locks the two clusters involved in a granted relocation for the
rest of the round to avoid groups of peers moving in loops.  This ablation
runs the same discovery with and without the rule and reports rounds, moves
and the final social cost: without locks more requests are granted per round,
at the risk of redundant back-and-forth moves.
"""

from __future__ import annotations

from benchmarks.conftest import print_block, run_once
from repro.analysis.reporting import format_table
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, build_scenario, initial_configuration
from repro.protocol.reformulation import ReformulationProtocol
from repro.strategies.selfish import SelfishStrategy


def run_lock_ablation(config):
    rows = []
    for enforce_locks in (True, False):
        data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
        configuration = initial_configuration(data, "random", seed=config.seed + 13)
        cost_model = data.network.cost_model(theta=config.theta(), alpha=config.alpha)
        protocol = ReformulationProtocol(
            cost_model, configuration, SelfishStrategy(), enforce_locks=enforce_locks
        )
        result = protocol.run(max_rounds=config.max_rounds)
        rows.append(
            (
                "with locks" if enforce_locks else "no locks",
                result.num_rounds,
                result.total_moves,
                round(result.final_social_cost, 3),
                result.converged and not result.cycle_detected,
            )
        )
    return rows


def test_ablation_locks(benchmark, experiment_config):
    rows = run_once(benchmark, run_lock_ablation, experiment_config)
    print_block(
        "Ablation: cycle-avoiding lock rule (scenario 1, selfish, from random clusters)",
        format_table(("variant", "# rounds", "# moves", "SCost", "converged"), rows),
    )
    by_variant = {row[0]: row for row in rows}
    # Both variants reach a comparable final quality on this well-separated data.
    assert abs(by_variant["with locks"][3] - by_variant["no locks"][3]) < 0.15
