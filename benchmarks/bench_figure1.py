"""Figure 1 — social and workload cost per protocol round (scenario 1).

Expected shape: both strategies start from the same (high) cost of the random
configuration; the selfish strategy decreases the social cost steadily every
round; the workload cost falls faster in the early rounds because demanding
peers are served first.
"""

from __future__ import annotations

from benchmarks.conftest import print_block, run_once
from repro.experiments.figure1 import run_figure1


def test_figure1(benchmark, experiment_config):
    result = run_once(benchmark, run_figure1, experiment_config)
    print_block("Figure 1: cost through progressing rounds", result.to_text())

    selfish = result.curves["selfish"]
    assert selfish.social_cost[-1] < selfish.social_cost[0]
    # Monotone non-increasing social cost for the selfish strategy.
    assert all(
        later <= earlier + 1e-9
        for earlier, later in zip(selfish.social_cost, selfish.social_cost[1:])
    )
    # The workload cost falls at least as fast (relatively) early on: after the
    # first quarter of the rounds it has shed a larger share of its eventual
    # improvement than the social cost has.
    rounds = len(selfish.social_cost)
    if rounds > 4:
        checkpoint = max(1, rounds // 4)
        social_drop = selfish.social_cost[0] - selfish.social_cost[-1]
        workload_drop = selfish.workload_cost[0] - selfish.workload_cost[-1]
        if social_drop > 0 and workload_drop > 0:
            social_progress = (selfish.social_cost[0] - selfish.social_cost[checkpoint]) / social_drop
            workload_progress = (
                selfish.workload_cost[0] - selfish.workload_cost[checkpoint]
            ) / workload_drop
            assert workload_progress >= social_progress - 0.25
