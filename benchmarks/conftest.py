"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) exactly once (``benchmark.pedantic`` with one round) and prints the
rows / series the paper reports, so ``pytest benchmarks/ --benchmark-only``
doubles as the reproduction run.

The scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable:

* ``benchmark`` (default) — 100 peers, 10 categories; the reported *shapes*
  (who wins, where the crossovers are, the ``1/M`` ideal cost) are the same
  as at paper scale but the run finishes in minutes.
* ``paper`` — the paper's 200-peer setup.
* ``quick`` — the tiny test-suite scale, useful while developing.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig

RESULTS_FILE = Path(__file__).parent / "latest_results.txt"


def bench_scale() -> str:
    """The benchmark scale selected through ``REPRO_BENCH_SCALE``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "benchmark").lower()
    if scale not in ExperimentConfig.scales():
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {ExperimentConfig.scales()}, got {scale!r}"
        )
    return scale


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """The experiment configuration for the selected benchmark scale."""
    return ExperimentConfig.from_scale(bench_scale())


def run_once(benchmark, function, *args, **kwargs):
    """Run *function* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, iterations=1, rounds=1)


def print_block(title: str, body: str) -> None:
    """Emit a titled block so the bench output reads like the paper's tables.

    The block is written to the real stdout (bypassing pytest's capture, so it
    appears even without ``-s``) and appended to ``benchmarks/latest_results.txt``
    so the most recent reproduction run can be inspected after the fact.
    """
    separator = "=" * max(len(title), 20)
    block = f"\n{separator}\n{title} (scale: {bench_scale()})\n{separator}\n{body}\n"
    sys.__stdout__.write(block)
    sys.__stdout__.flush()
    with RESULTS_FILE.open("a", encoding="utf-8") as handle:
        handle.write(block)
