"""Benchmark — a 200-peer, 10-period maintenance run under scheduled drift.

Times the full declarative dynamics path end to end: a
:class:`~repro.session.simulation.Simulation` with a
``SessionConfig(dynamics=...)`` drift schedule (two alternating
``workload-full`` rules flipping a quarter of the perturbed cluster between
two target categories, so *every* period's drift genuinely moves the cost)
driving ten periods of the periodic maintenance loop — per-period drift
application, cost-model rebuild, protocol run and the kernel-vectorized
social/workload cost traces.

Run with ``--benchmark-json BENCH_maintenance.json`` (CI does) to produce
the artifact the trend job compares across runs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_block
from repro.analysis.reporting import format_table
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, ScenarioConfig
from repro.experiments.config import ExperimentConfig
from repro.session import SessionConfig, Simulation

#: The paper's Section 4.2 setting: 200 peers, uniform workload, 10 periods.
NUM_PEERS = 200
PERIODS = 10

#: From period 1 on, a quarter of the perturbed cluster's peers switch their
#: whole workload — to ``cat02`` on odd periods, back towards ``cat03`` on
#: even ones, so the drift never saturates into a no-op.
DRIFT = {
    "rules": [
        {
            "model": "workload-full",
            "options": {"peer_fraction": 0.25, "category": "cat02"},
            "start": 1,
            "every": 2,
        },
        {
            "model": "workload-full",
            "options": {"peer_fraction": 0.25, "category": "cat03"},
            "start": 2,
            "every": 2,
        },
    ]
}


def drift_session() -> SessionConfig:
    config = ExperimentConfig(
        scenario=ScenarioConfig(
            num_peers=NUM_PEERS,
            num_categories=10,
            documents_per_peer=8,
            queries_per_peer=5,
            uniform_workload=True,
        ),
        max_rounds=150,
    )
    return SessionConfig.from_experiment_config(
        config,
        scenario=SCENARIO_SAME_CATEGORY,
        strategy="selfish",
        initial="category",
        dynamics=DRIFT,
    )


def run_drift_periods():
    simulation = Simulation.from_config(drift_session())
    return simulation.run_maintenance(PERIODS)


@pytest.fixture(scope="module")
def drift_result():
    """One untimed reference run shared by the shape assertions."""
    return run_drift_periods()


def test_maintenance_drift_run(benchmark):
    """The trend-tracked measurement: 10 drifting periods at 200 peers."""
    result = benchmark.pedantic(run_drift_periods, iterations=1, rounds=3)
    assert result.num_periods == PERIODS
    # the schedule fired every period after the first
    assert len(result.extras["drift"]) == PERIODS - 1


def test_maintenance_drift_shape(drift_result):
    """Sanity: drift perturbs the cost and maintenance reacts."""
    records = drift_result.periods
    assert records[0].moves == 0  # the ground-truth start is stable
    perturbed = [record for record in records[1:] if record.social_cost_before > 0.101]
    assert perturbed, "the scheduled drift never moved the social cost"
    assert any(record.moves > 0 for record in records[1:])
    print_block(
        "Maintenance under scheduled drift (200 peers, 10 periods)",
        format_table(
            ("period", "SCost before", "SCost after", "moves", "rounds"),
            [
                (
                    record.period,
                    f"{record.social_cost_before:.3f}",
                    f"{record.social_cost_after:.3f}",
                    record.moves,
                    record.rounds,
                )
                for record in records
            ],
        ),
    )
