"""Ablation — the cluster membership cost function ``theta``.

The paper uses a linear ``theta`` (fully connected clusters) and notes a
structured intra-cluster overlay would give a logarithmic one.  This ablation
reruns the scenario-1 discovery with linear, logarithmic and constant
``theta`` and reports the final number of clusters and social cost: a cheaper
membership function tolerates (and produces) larger clusters.
"""

from __future__ import annotations

from benchmarks.conftest import print_block, run_once
from repro.analysis.reporting import format_table
from repro.core.theta import theta_from_name
from repro.datasets.scenarios import SCENARIO_SAME_CATEGORY, build_scenario, initial_configuration
from repro.protocol.reformulation import ReformulationProtocol
from repro.strategies.selfish import SelfishStrategy

THETAS = ("linear", "logarithmic", "constant")


def run_theta_ablation(config):
    rows = []
    for theta_name in THETAS:
        data = build_scenario(SCENARIO_SAME_CATEGORY, config.scenario)
        configuration = initial_configuration(data, "singletons", seed=config.seed + 13)
        cost_model = data.network.cost_model(theta=theta_from_name(theta_name), alpha=config.alpha)
        protocol = ReformulationProtocol(cost_model, configuration, SelfishStrategy())
        result = protocol.run(max_rounds=config.max_rounds)
        rows.append(
            (
                theta_name,
                result.num_rounds,
                configuration.num_nonempty_clusters(),
                round(result.final_social_cost, 3),
                round(result.final_workload_cost, 3),
            )
        )
    return rows


def test_ablation_theta(benchmark, experiment_config):
    rows = run_once(benchmark, run_theta_ablation, experiment_config)
    print_block(
        "Ablation: theta function (scenario 1, selfish, from singletons)",
        format_table(("theta", "# rounds", "# clusters", "SCost", "WCost"), rows),
    )
    by_theta = {row[0]: row for row in rows}
    # A sub-linear membership cost never yields more clusters than the linear one.
    assert by_theta["logarithmic"][2] <= by_theta["linear"][2]
