"""Figure 3 — social cost after content updates in one cluster.

Expected shape: mirrors Figure 2 with the roles of the strategies swapped —
peers whose *content* changed no longer serve their own cluster, which is a
motive for the altruistic strategy but not for the selfish one.
"""

from __future__ import annotations

from benchmarks.conftest import print_block, run_once
from repro.experiments.figure3 import run_figure3

FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_figure3(benchmark, experiment_config):
    result = run_once(benchmark, run_figure3, experiment_config, fractions=FRACTIONS)
    print_block("Figure 3: social cost after content updates", result.to_text())

    for curve in result.curves:
        series = curve.series()
        baseline = series[0.0]
        assert all(cost >= baseline - 1e-6 for cost in series.values())

    # The altruistic strategy is the one that reacts to content drift.
    altruistic_moves = sum(
        point.moves
        for curve in result.curves
        if curve.strategy == "altruistic"
        for point in curve.points
    )
    assert altruistic_moves > 0
